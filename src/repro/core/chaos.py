"""Fault-injection harness for the campaign runners.

Proving fault tolerance needs faults on demand: workers that raise,
hang, crash, or return garbage, and cache files that rot on disk. A
:class:`ChaosPlan` maps spec fingerprints to :class:`ChaosRule`
behaviours and is installed through an environment variable, so the
injection point (:func:`maybe_inject`, called at the top of every spec
execution) fires identically in-process and inside forked/spawned
worker processes. Attempt counts live in per-fingerprint files next to
the plan, so "fail the first N attempts" semantics survive process
boundaries — exactly what a crash-once-then-succeed test needs.

The hot path costs one environment lookup when no plan is installed;
production sweeps never notice the hook exists.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.faults import WorkerCrash

#: Environment variable pointing at an installed plan's JSON file.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Supported injected behaviours. The ``feedback-*`` actions do not
#: fail the run: they disrupt the in-simulation recovery feedback
#: channel (every NACK/report dropped, or delivered garbled), proving
#: a broken reverse path degrades to no-ARQ behaviour instead of
#: wedging the experiment. The ``wire-*`` actions fire inside a remote
#: worker process (see :mod:`repro.core.campaign.worker`) and break
#: the worker↔scheduler transport instead of the simulation.
ACTIONS = (
    "raise",
    "hang",
    "crash",
    "garbage",
    "feedback-drop",
    "feedback-garble",
    "wire-drop",
    "wire-stall",
    "wire-garble",
    "wire-partial",
    "wire-drain",
)

#: Actions consumed by the recovery feedback channel rather than the
#: runner's injection point.
FEEDBACK_ACTIONS = ("feedback-drop", "feedback-garble")

#: Actions consumed by the remote worker's wire loop rather than the
#: runner's injection point:
#:
#: * ``wire-drop``    — the worker process exits abruptly mid-unit
#:   (socket closes without an outcome; a chaos kill);
#: * ``wire-stall``   — the worker stops heartbeating and sits on the
#:   unit (a network partition / wedged host);
#: * ``wire-garble``  — the worker emits a non-JSON line in place of
#:   the outcome frame (corrupted stream);
#: * ``wire-partial`` — the worker writes half an outcome frame and
#:   then dies (torn write at the transport level);
#: * ``wire-drain``   — the worker starts a graceful drain mid-unit:
#:   the unit still completes and flushes, then the worker says bye
#:   and exits 0 (an intentional stop a supervisor must not respawn).
WIRE_ACTIONS = (
    "wire-drop",
    "wire-stall",
    "wire-garble",
    "wire-partial",
    "wire-drain",
)

#: What a ``garbage`` rule makes the worker return in place of a
#: summary — anything that is not a ResultSummary works; a string makes
#: failure messages readable.
GARBAGE = "<chaos-garbage>"

#: Exit status of an injected worker crash (visible in FailureRecords).
CRASH_EXIT_CODE = 73


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` rule throws."""


@dataclass(frozen=True)
class ChaosRule:
    """One fingerprint's injected behaviour.

    ``times`` limits the injection to the first N attempts (``None``
    means every attempt), which is how a crash-once/succeed-on-retry
    scenario is written. ``hang_s`` only matters for ``hang`` rules and
    should comfortably exceed the spec timeout under test.
    """

    action: str
    times: Optional[int] = None
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r} (expected one of {ACTIONS})"
            )


class ChaosPlan:
    """A set of fingerprint → rule injections plus cross-process state."""

    def __init__(self, plan_dir: Union[str, Path]):
        self.plan_dir = Path(plan_dir)
        self.rules: dict[str, ChaosRule] = {}

    @property
    def plan_path(self) -> Path:
        return self.plan_dir / "plan.json"

    @property
    def attempts_dir(self) -> Path:
        return self.plan_dir / "attempts"

    def add(self, fingerprint: str, rule: ChaosRule) -> "ChaosPlan":
        """Register (or replace) the rule for one fingerprint."""
        self.rules[fingerprint] = rule
        return self

    def save(self) -> Path:
        """Write the plan file the injection hook reads."""
        self.attempts_dir.mkdir(parents=True, exist_ok=True)
        payload = {fp: asdict(rule) for fp, rule in self.rules.items()}
        self.plan_path.write_text(json.dumps(payload, indent=2))
        return self.plan_path

    def attempts(self, fingerprint: str) -> int:
        """How many attempts of this fingerprint have started so far."""
        try:
            return (self.attempts_dir / fingerprint).stat().st_size
        except OSError:
            return 0

    def reset(self) -> None:
        """Forget attempt history (rules stay)."""
        if self.attempts_dir.is_dir():
            for path in self.attempts_dir.iterdir():
                path.unlink(missing_ok=True)

    @contextmanager
    def installed(self) -> Iterator["ChaosPlan"]:
        """Activate the plan for this process and all child workers."""
        path = self.save()
        previous = os.environ.get(CHAOS_PLAN_ENV)
        os.environ[CHAOS_PLAN_ENV] = str(path)
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(CHAOS_PLAN_ENV, None)
            else:
                os.environ[CHAOS_PLAN_ENV] = previous


def enabled() -> bool:
    """True when a plan is installed (one env lookup; the fast path)."""
    return bool(os.environ.get(CHAOS_PLAN_ENV))


def _load_rules(plan_path: Path) -> dict[str, ChaosRule]:
    try:
        raw = json.loads(plan_path.read_text())
    except (OSError, ValueError):
        return {}
    names = {f.name for f in fields(ChaosRule)}
    rules = {}
    for fingerprint, data in raw.items():
        if isinstance(data, dict):
            rules[fingerprint] = ChaosRule(
                **{k: v for k, v in data.items() if k in names}
            )
    return rules


def _count_attempt(attempts_dir: Path, fingerprint: str) -> int:
    """Record one attempt start; returns its 1-based ordinal."""
    attempts_dir.mkdir(parents=True, exist_ok=True)
    path = attempts_dir / fingerprint
    with open(path, "ab") as handle:
        handle.write(b"x")
        handle.flush()
    return path.stat().st_size


def maybe_inject(fingerprint: str) -> Optional[str]:
    """Fire the installed rule for this fingerprint, if any.

    Called at the top of every spec execution. Returns ``None`` to
    proceed normally, or :data:`GARBAGE` when a ``garbage`` rule wants
    the caller to return a poisoned result. ``raise`` rules throw
    :class:`ChaosError`; ``hang`` rules sleep; ``crash`` rules kill the
    worker process outright (``os._exit``) when running inside a child
    process, and raise :class:`~repro.core.faults.WorkerCrash` when
    in-process, where taking down the interpreter would take the
    campaign with it.
    """
    plan_path = os.environ.get(CHAOS_PLAN_ENV)
    if not plan_path:
        return None
    plan_path = Path(plan_path)
    rule = _load_rules(plan_path).get(fingerprint)
    if rule is None:
        return None
    if rule.action in FEEDBACK_ACTIONS or rule.action in WIRE_ACTIONS:
        # Not a simulation fault: the recovery session picks up
        # feedback-* via feedback_disruption() and the remote worker
        # picks up wire-* via wire_disruption(). Don't burn an
        # attempt slot here.
        return None
    attempt = _count_attempt(plan_path.parent / "attempts", fingerprint)
    if rule.times is not None and attempt > rule.times:
        return None
    if rule.action == "raise":
        raise ChaosError(f"injected exception (attempt {attempt})")
    if rule.action == "hang":
        time.sleep(rule.hang_s)
        return None
    if rule.action == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrash(f"injected worker crash (attempt {attempt})")
    if rule.action == "garbage":
        return GARBAGE
    return None  # pragma: no cover - ACTIONS is exhaustive


def feedback_disruption(fingerprint: str) -> Optional[str]:
    """Disruption mode for this spec's recovery feedback channel.

    Returns ``"drop"`` or ``"garble"`` when a ``feedback-*`` rule
    matches the fingerprint (or the ``"*"`` wildcard entry, which lets
    a sweep disrupt every spec without enumerating fingerprints);
    ``None`` otherwise.
    """
    plan_path = os.environ.get(CHAOS_PLAN_ENV)
    if not plan_path:
        return None
    rules = _load_rules(Path(plan_path))
    rule = rules.get(fingerprint) or rules.get("*")
    if rule is None or rule.action not in FEEDBACK_ACTIONS:
        return None
    return rule.action.removeprefix("feedback-")


def wire_disruption(fingerprint: str) -> Optional[ChaosRule]:
    """The wire fault a remote worker should inject for this unit.

    Called by the worker's execution loop as each ``execute`` frame
    arrives. Returns the matching ``wire-*`` rule (exact fingerprint
    first, then the ``"*"`` wildcard) while its ``times`` budget lasts,
    ``None`` otherwise. Attempts are counted cross-process in the
    plan's attempts directory under a ``.wire`` suffix, so "kill the
    first worker that touches this unit, let the reassigned attempt
    succeed" works even though the two attempts run in different
    worker processes (possibly on different hosts sharing the plan
    directory).
    """
    plan_path = os.environ.get(CHAOS_PLAN_ENV)
    if not plan_path:
        return None
    plan_path = Path(plan_path)
    rules = _load_rules(plan_path)
    rule = rules.get(fingerprint) or rules.get("*")
    if rule is None or rule.action not in WIRE_ACTIONS:
        return None
    attempt = _count_attempt(plan_path.parent / "attempts", fingerprint + ".wire")
    if rule.times is not None and attempt > rule.times:
        return None
    return rule


def truncate_cache_entry(path: Union[str, Path], keep_bytes: int = 20) -> None:
    """Chop a cache/journal file mid-record (a torn write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: min(keep_bytes, len(data))])


def corrupt_cache_entry(
    path: Union[str, Path], payload: bytes = b'{"schema_version": "\x00garbage'
) -> None:
    """Overwrite a cache/journal file with non-JSON bytes (bit rot)."""
    Path(path).write_bytes(payload)
