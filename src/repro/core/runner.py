"""Experiment runners: batch execution, fingerprints, and summaries.

Every paper figure is a batch of :class:`ExperimentSpec` points, and
until this module existed each consumer ran them one by one through
:func:`repro.core.experiment.run_experiment`. The runner layer makes
the batch the unit of work:

* :func:`spec_fingerprint` gives each spec a stable content hash so a
  result can be cached on disk and recognized across processes and
  sessions (see :mod:`repro.core.resultstore`).
* :class:`ResultSummary` is the compact, picklable measurement record
  that crosses process and cache boundaries — the headline numbers of
  one run without the traces and client records that make
  :class:`~repro.core.experiment.ExperimentResult` heavyweight.
* :class:`SerialRunner` runs a batch in-process (optionally keeping
  the full-detail results); :class:`ProcessPoolRunner` fans the batch
  out over worker processes. Each worker builds its own engine and
  VQM tool, so a spec's result is a pure function of the spec and the
  two runners produce bitwise-identical summaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.vqm.tool import VqmTool

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.resultstore import ResultStore

#: Bump whenever the shape or meaning of :class:`ResultSummary` (or of
#: the simulation outputs feeding it) changes. The version salts every
#: fingerprint, so old on-disk cache entries simply stop matching.
CACHE_SCHEMA_VERSION = 1


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Stable content hash of a spec (hex SHA-256).

    Fields are serialized canonically (sorted names, compact JSON) and
    salted with :data:`CACHE_SCHEMA_VERSION`; the digest is identical
    across processes and interpreter restarts, unlike ``hash()``.
    """
    payload = {
        f.name: getattr(spec, f.name) for f in dataclasses.fields(spec)
    }
    canonical = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "spec": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ResultSummary:
    """Headline measurements of one run, small enough to ship anywhere.

    Unlike :class:`ExperimentResult` this carries no display trace,
    client record, or per-segment VQM detail — just the numbers the
    figures, CSVs, and reports consume. ``elapsed_s`` (the wall-clock
    cost of producing the result) is excluded from equality so cached
    and fresh results of the same spec compare equal.
    """

    quality_score: float
    lost_frame_fraction: float
    packet_drop_fraction: float
    frozen_fraction: float
    rebuffer_events: int
    total_stall_s: float
    conformant_packets: int
    dropped_packets: int
    remarked_packets: int
    dropped_bytes: int
    server_aborted: bool
    server_packets: int
    client_packets: int
    network: dict = field(default_factory=dict)
    elapsed_s: float = field(default=0.0, compare=False)

    @classmethod
    def from_result(
        cls, result: ExperimentResult, elapsed_s: float = 0.0
    ) -> "ResultSummary":
        """Condense a full experiment result."""
        stats = result.policer_stats
        return cls(
            quality_score=result.quality_score,
            lost_frame_fraction=result.lost_frame_fraction,
            packet_drop_fraction=result.packet_drop_fraction,
            frozen_fraction=result.trace.frozen_fraction,
            rebuffer_events=result.trace.rebuffer_events,
            total_stall_s=result.trace.total_stall_s,
            conformant_packets=stats.conformant_packets,
            dropped_packets=stats.dropped_packets,
            remarked_packets=stats.remarked_packets,
            dropped_bytes=stats.dropped_bytes,
            server_aborted=result.server_aborted,
            server_packets=result.extras.get("server_packets", 0),
            client_packets=result.extras.get("client_packets", 0),
            network=dict(result.extras.get("network", {})),
            elapsed_s=elapsed_s,
        )

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary (the cache file payload)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ResultSummary":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class RunnerStats:
    """What one runner did across its batches."""

    submitted: int = 0
    simulated: int = 0
    cache_hits: int = 0
    time_saved_s: float = 0.0

    def describe(self) -> str:
        """One-line cache/throughput report."""
        return (
            f"{self.submitted} specs: {self.simulated} simulated, "
            f"{self.cache_hits} cache hits "
            f"(~{self.time_saved_s:.1f} s simulation saved)"
        )


def _summarize_run(
    spec: ExperimentSpec, vqm_tool: Optional[VqmTool] = None
) -> tuple[ResultSummary, ExperimentResult]:
    started = time.perf_counter()
    result = run_experiment(spec, vqm_tool=vqm_tool)
    elapsed = time.perf_counter() - started
    return ResultSummary.from_result(result, elapsed_s=elapsed), result


def _pool_worker(spec: ExperimentSpec) -> ResultSummary:
    """Process-pool entry point: fresh engine and VQM tool per call."""
    summary, _ = _summarize_run(spec)
    return summary


class Runner:
    """Base class: cache bookkeeping around a batch execution strategy.

    Subclasses implement :meth:`_execute` for the specs the cache could
    not answer. When a :class:`ResultStore` is attached, hits skip the
    simulation entirely and fresh results are written back, so a
    repeated batch costs only file reads.
    """

    def __init__(self, store: Optional["ResultStore"] = None):
        self.store = store
        self.stats = RunnerStats()

    def run_batch(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ResultSummary]:
        """Run every spec, in order; cached points never re-simulate."""
        specs = list(specs)
        self.stats.submitted += len(specs)
        summaries: list[Optional[ResultSummary]] = [None] * len(specs)
        pending: list[tuple[int, ExperimentSpec, str]] = []
        # NB: "is not None", not truthiness — ResultStore defines
        # __len__, so an empty store is falsy.
        for i, spec in enumerate(specs):
            fingerprint = (
                spec_fingerprint(spec) if self.store is not None else ""
            )
            cached = (
                self.store.get(fingerprint)
                if self.store is not None
                else None
            )
            if cached is not None:
                summaries[i] = cached
                self.stats.cache_hits += 1
                self.stats.time_saved_s += cached.elapsed_s
            else:
                pending.append((i, spec, fingerprint))
        if pending:
            fresh = self._execute([spec for _, spec, _ in pending])
            self.stats.simulated += len(pending)
            for (i, spec, fingerprint), summary in zip(pending, fresh):
                summaries[i] = summary
                if self.store is not None:
                    self.store.put(fingerprint, spec, summary)
        return summaries  # type: ignore[return-value]

    def _execute(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ResultSummary]:
        raise NotImplementedError


class SerialRunner(Runner):
    """In-process, one-at-a-time execution.

    The only runner that can retain full-detail results: with
    ``keep_details=True``, :attr:`last_details` holds the
    :class:`ExperimentResult` of every point the most recent batch
    actually simulated (cache hits have no detail to keep), in
    submission order.
    """

    def __init__(
        self,
        store: Optional["ResultStore"] = None,
        vqm_tool: Optional[VqmTool] = None,
        keep_details: bool = False,
    ):
        super().__init__(store=store)
        self.vqm_tool = vqm_tool
        self.keep_details = keep_details
        self.last_details: list[ExperimentResult] = []

    def _execute(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ResultSummary]:
        tool = self.vqm_tool or VqmTool()
        summaries = []
        if self.keep_details:
            self.last_details = []
        for spec in specs:
            summary, result = _summarize_run(spec, vqm_tool=tool)
            if self.keep_details:
                self.last_details.append(result)
            summaries.append(summary)
        return summaries


class ProcessPoolRunner(Runner):
    """Fan a batch out over worker processes.

    Workers build their own engine and VQM tool per spec, so results
    are a pure function of the spec — independent of worker count and
    bitwise-identical to :class:`SerialRunner` output.
    """

    def __init__(self, jobs: int, store: Optional["ResultStore"] = None):
        super().__init__(store=store)
        if jobs < 1:
            raise ValueError(f"need at least one worker (jobs={jobs})")
        self.jobs = jobs

    def _execute(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ResultSummary]:
        if len(specs) == 1 or self.jobs == 1:
            # Not worth forking for; also keeps single-point batches
            # usable in environments without working multiprocessing.
            return [_pool_worker(spec) for spec in specs]
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_pool_worker, specs))


def make_runner(
    jobs: int = 1,
    store: Optional["ResultStore"] = None,
    vqm_tool: Optional[VqmTool] = None,
) -> Runner:
    """The natural runner for a job count: serial for 1, pooled above."""
    if jobs <= 1:
        return SerialRunner(store=store, vqm_tool=vqm_tool)
    return ProcessPoolRunner(jobs, store=store)
