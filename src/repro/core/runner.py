"""Experiment runners: batch execution, fingerprints, and summaries.

Every paper figure is a batch of :class:`ExperimentSpec` points, and
until this module existed each consumer ran them one by one through
:func:`repro.core.experiment.run_experiment`. The runner layer makes
the batch the unit of work:

* :func:`spec_fingerprint` gives each spec a stable content hash so a
  result can be cached on disk and recognized across processes and
  sessions (see :mod:`repro.core.resultstore`).
* :class:`ResultSummary` is the compact, picklable measurement record
  that crosses process and cache boundaries — the headline numbers of
  one run without the traces and client records that make
  :class:`~repro.core.experiment.ExperimentResult` heavyweight.
* :class:`SerialRunner` runs a batch in-process (optionally keeping
  the full-detail results); :class:`ProcessPoolRunner` fans the batch
  out over worker processes. Each worker builds its own engine and
  VQM tool, so a spec's result is a pure function of the spec and the
  two runners produce bitwise-identical summaries.

Since the campaign refactor, a runner no longer executes its batch
directly: :meth:`Runner.run_batch` and :meth:`Runner.run_stream` feed
the :class:`~repro.core.campaign.scheduler.CampaignScheduler`, which
shards the work, steals between shards, bounds the in-flight window,
and (with a store attached) deduplicates concurrent campaigns through
cross-process single-flight leases. The runner object remains the
user-facing handle: it owns the execution strategy (which the
scheduler consumes as a worker backend), the result store, the retry
policy, and the stats.

Fault tolerance (see :mod:`repro.core.faults`): attach a
:class:`~repro.core.faults.RetryPolicy` and a batch survives its own
specs. Each failing spec is retried with exponential backoff — every
attempt rebuilds the engine from the spec's seed, so retries are
RNG-safe replays — under a per-attempt wall-clock timeout (``SIGALRM``
in-process, process termination in the pool). A spec that exhausts its
budget is *quarantined*: its slot in the returned batch carries a
structured :class:`~repro.core.faults.FailureRecord` instead of a
summary, and the rest of the sweep completes. A pool whose workers die
degrades to in-process execution rather than aborting the campaign.
Quarantined specs are never written to the result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.core import chaos
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.core.faults import (
    FailureRecord,
    PoisonResult,
    RetryPolicy,
)
from repro.vqm.tool import VqmTool

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.resultstore import ResultStore

#: Bump whenever the shape or meaning of :class:`ResultSummary` (or of
#: the simulation outputs feeding it) changes. The version salts every
#: fingerprint, so old on-disk cache entries simply stop matching.
CACHE_SCHEMA_VERSION = 3  # v3: capture_trace spec field + flow_trace payload

#: One batch slot: a summary on success, a failure record on quarantine.
BatchOutcome = Union["ResultSummary", FailureRecord]

#: Per-outcome callback: ``(spec, fingerprint, outcome)``, invoked as
#: each slot resolves (cache hit, fresh result, or quarantine) — the
#: hook journals use to checkpoint incrementally.
OutcomeCallback = Callable[[ExperimentSpec, str, BatchOutcome], None]


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Stable content hash of a spec (hex SHA-256).

    Fields are serialized canonically (sorted names, compact JSON) and
    salted with :data:`CACHE_SCHEMA_VERSION`; the digest is identical
    across processes and interpreter restarts, unlike ``hash()``.

    ``dataclasses.asdict`` recurses into nested dataclasses, so a
    multi-flow :class:`~repro.flows.aggregate.AggregateSpec` (whose
    ``flows`` tuple holds :class:`ExperimentSpec` members) fingerprints
    the same way; for a flat spec the payload is byte-identical to the
    historical field-by-field form.
    """
    payload = dataclasses.asdict(spec)
    canonical = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "spec": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ResultSummary:
    """Headline measurements of one run, small enough to ship anywhere.

    Unlike :class:`ExperimentResult` this carries no display trace,
    client record, or per-segment VQM detail — just the numbers the
    figures, CSVs, and reports consume. ``elapsed_s`` (the wall-clock
    cost of producing the result) is excluded from equality so cached
    and fresh results of the same spec compare equal.
    """

    quality_score: float
    lost_frame_fraction: float
    packet_drop_fraction: float
    frozen_fraction: float
    rebuffer_events: int
    total_stall_s: float
    conformant_packets: int
    dropped_packets: int
    remarked_packets: int
    dropped_bytes: int
    server_aborted: bool
    server_packets: int
    client_packets: int
    network: dict = field(default_factory=dict)
    # Recovery counters (all zero unless the spec enables ARQ / FEC /
    # feedback loss; see repro.recovery).
    nacks_sent: int = 0
    repairs_sent: int = 0
    repairs_arrived_late: int = 0
    fec_repaired: int = 0
    feedback_lost: int = 0
    # Per-packet detection trace; populated only when the spec set
    # ``capture_trace`` (and omitted from to_dict() when None, so
    # flags-off payloads are byte-identical to the previous schema).
    flow_trace: Optional[dict] = None
    elapsed_s: float = field(default=0.0, compare=False)

    @classmethod
    def from_result(
        cls, result: ExperimentResult, elapsed_s: float = 0.0
    ) -> "ResultSummary":
        """Condense a full experiment result."""
        stats = result.policer_stats
        recovery = result.extras.get("recovery", {})
        return cls(
            quality_score=result.quality_score,
            lost_frame_fraction=result.lost_frame_fraction,
            packet_drop_fraction=result.packet_drop_fraction,
            frozen_fraction=result.trace.frozen_fraction,
            rebuffer_events=result.trace.rebuffer_events,
            total_stall_s=result.trace.total_stall_s,
            conformant_packets=stats.conformant_packets,
            dropped_packets=stats.dropped_packets,
            remarked_packets=stats.remarked_packets,
            dropped_bytes=stats.dropped_bytes,
            server_aborted=result.server_aborted,
            server_packets=result.extras.get("server_packets", 0),
            client_packets=result.extras.get("client_packets", 0),
            network=dict(result.extras.get("network", {})),
            nacks_sent=recovery.get("nacks_sent", 0),
            repairs_sent=recovery.get("repairs_sent", 0),
            repairs_arrived_late=recovery.get("repairs_arrived_late", 0),
            fec_repaired=recovery.get("fec_repaired", 0),
            feedback_lost=recovery.get("feedback_lost", 0),
            flow_trace=result.extras.get("flow_trace"),
            elapsed_s=elapsed_s,
        )

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary (the cache file payload).

        ``flow_trace`` appears only when a trace was captured, so
        trace-off payloads keep the pre-trace shape exactly.
        """
        data = dataclasses.asdict(self)
        if data.get("flow_trace") is None:
            data.pop("flow_trace", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ResultSummary":
        """Inverse of :meth:`to_dict`; ignores unknown keys.

        Aggregate payloads (multi-flow runs) carry a
        ``flow_summaries`` key; dispatch those to the subclass so a
        cache entry written by a multi-flow run deserializes back to
        the same type it was stored as.
        """
        if cls is ResultSummary and "flow_summaries" in data:
            from repro.flows.aggregate import AggregateSummary

            return AggregateSummary.from_dict(data)
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def validate_summary(candidate) -> ResultSummary:
    """Reject results a broken worker might hand back.

    Raises :class:`~repro.core.faults.PoisonResult` unless ``candidate``
    is a :class:`ResultSummary` whose headline numbers are finite and
    sane — the cheap structural check that keeps one garbage-returning
    worker from poisoning a cache or a figure.
    """
    import math

    if not isinstance(candidate, ResultSummary):
        raise PoisonResult(
            f"worker returned {type(candidate).__name__}, not a ResultSummary"
        )
    for name in ("quality_score", "lost_frame_fraction", "packet_drop_fraction"):
        value = getattr(candidate, name)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise PoisonResult(f"summary field {name} is not finite: {value!r}")
    if candidate.dropped_packets < 0 or candidate.server_packets < 0:
        raise PoisonResult("summary packet counts are negative")
    return candidate


@dataclass
class RunnerStats:
    """What one runner (one scheduler, one service) did so far."""

    submitted: int = 0
    simulated: int = 0
    cache_hits: int = 0
    time_saved_s: float = 0.0
    retries: int = 0
    quarantined: int = 0
    fallbacks: int = 0
    # Campaign-scheduler counters: cross-shard steals and waits spent
    # on another process's single-flight lease.
    steals: int = 0
    single_flight_waits: int = 0
    # Remote-backend counters: units re-dispatched after their worker
    # died or partitioned, distinct workers declared lost, and units
    # drained through the local serial fallback because no remote
    # worker was available.
    reassignments: int = 0
    worker_losses: int = 0
    degraded_units: int = 0
    # Fleet counters: publishes discarded because the holder's store
    # lease was fenced off mid-simulation, stale leases reclaimed by
    # startup hygiene, and the observed points/sec per worker (EWMA;
    # ``w<id>`` keys for scheduler slots, ``host:port`` for remotes).
    fenced_publishes: int = 0
    stale_leases_reclaimed: int = 0
    worker_speeds: dict = field(default_factory=dict)
    # Fast-lane counters aggregated across processes. The in-process
    # :data:`repro.core.fastlane.stats` object is per-process, so pool
    # and remote workers ship deltas back with their outcomes and the
    # parent folds them here — the CLI stats line reads these.
    fastpath_hits: int = 0
    fastpath_fallbacks: int = 0
    batch_points: int = 0
    batch_groups: int = 0

    def fold_fastlane(self, delta: Optional[dict]) -> None:
        """Fold a worker's fast-lane counter delta into the aggregate."""
        if not delta:
            return
        self.fastpath_hits += int(delta.get("hits", 0))
        self.fastpath_fallbacks += int(delta.get("fallbacks", 0))
        self.batch_points += int(delta.get("batch_points", 0))
        self.batch_groups += int(delta.get("batch_groups", 0))

    def describe(self) -> str:
        """One-line cache/throughput report."""
        line = (
            f"{self.submitted} specs: {self.simulated} simulated, "
            f"{self.cache_hits} cache hits "
            f"(~{self.time_saved_s:.1f} s simulation saved)"
        )
        if self.retries:
            line += f", {self.retries} retries"
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        if self.fallbacks:
            line += f", {self.fallbacks} pool fallbacks"
        if self.single_flight_waits:
            line += f", {self.single_flight_waits} single-flight waits"
        if self.reassignments:
            line += f", {self.reassignments} reassignments"
        if self.worker_losses:
            line += f", {self.worker_losses} workers lost"
        if self.degraded_units:
            line += f", {self.degraded_units} degraded to local"
        if self.fenced_publishes:
            line += f", {self.fenced_publishes} fenced publishes"
        if self.stale_leases_reclaimed:
            line += f", {self.stale_leases_reclaimed} stale leases reclaimed"
        if self.fastpath_hits or self.fastpath_fallbacks:
            line += (
                f", {self.fastpath_hits} fast-path"
                f" ({self.fastpath_fallbacks} engine)"
            )
        if self.batch_points:
            line += (
                f", {self.batch_points} batched"
                f" in {self.batch_groups} grids"
            )
        return line


def _summarize_run(
    spec: ExperimentSpec, vqm_tool: Optional[VqmTool] = None
) -> tuple[BatchOutcome, Optional[ExperimentResult]]:
    started = time.perf_counter()
    if chaos.enabled():
        injected = chaos.maybe_inject(spec_fingerprint(spec))
        if injected is not None:
            # A garbage rule: hand the poison to the caller's validator.
            return injected, None
    if getattr(spec, "is_aggregate", False):
        # Multi-flow aggregate unit: the flows layer owns execution
        # (engine fan-in or interleaved fast lane) and returns a
        # summary directly — there is no single ExperimentResult.
        from repro.flows.aggregate import run_aggregate

        summary = run_aggregate(spec, vqm_tool=vqm_tool)
        elapsed = time.perf_counter() - started
        return dataclasses.replace(summary, elapsed_s=elapsed), None
    result = run_experiment(spec, vqm_tool=vqm_tool)
    elapsed = time.perf_counter() - started
    return ResultSummary.from_result(result, elapsed_s=elapsed), result


def _pool_worker(spec: ExperimentSpec) -> BatchOutcome:
    """Process-pool entry point: fresh engine and VQM tool per call."""
    summary, _ = _summarize_run(spec)
    return summary


def _fastlane_snapshot() -> dict:
    """Current process's fast-lane counter snapshot."""
    from repro.core import fastlane

    return fastlane.stats.as_dict()


def _fastlane_delta(snapshot: dict) -> dict:
    """Fast-lane counters accrued since ``snapshot``."""
    from repro.core import fastlane

    return fastlane.stats.delta_since(snapshot)


def _pool_worker_stats(
    spec: ExperimentSpec,
) -> tuple[BatchOutcome, dict]:
    """Pool entry point that also ships the fast-lane counter delta.

    Dispatch counters live in the worker process
    (:data:`repro.core.fastlane.stats` is per-process); the parent
    folds the returned delta into its :class:`RunnerStats` so the CLI
    stats line reports the whole campaign, not just the parent.
    """
    snapshot = _fastlane_snapshot()
    summary, _ = _summarize_run(spec)
    return summary, _fastlane_delta(snapshot)


def _batch_run(
    specs: Sequence[ExperimentSpec], vqm_tool: Optional[VqmTool] = None
) -> list[BatchOutcome]:
    """Run a coalesced grid through the batch lane, chaos rules intact.

    Chaos injection is consulted per member — exactly as the per-unit
    path does in :func:`_summarize_run` — so fault-injection tests see
    the same poison outcomes whether or not coalescing is on. The
    surviving members run as one array program.
    """
    outcomes: list[Optional[BatchOutcome]] = [None] * len(specs)
    live: list[int] = []
    for i, spec in enumerate(specs):
        if chaos.enabled():
            injected = chaos.maybe_inject(spec_fingerprint(spec))
            if injected is not None:
                outcomes[i] = injected
                continue
        live.append(i)
    if live:
        from repro.core.fastlane import run_batchpath

        summaries = run_batchpath(
            [specs[i] for i in live], vqm_tool=vqm_tool
        )
        for i, summary in zip(live, summaries):
            outcomes[i] = summary
    return outcomes  # type: ignore[return-value]


def _pool_batch_worker(
    specs: Sequence[ExperimentSpec],
) -> tuple[list[BatchOutcome], dict]:
    """Process-pool entry point for a coalesced batch grid."""
    snapshot = _fastlane_snapshot()
    outcomes = _batch_run(specs)
    return outcomes, _fastlane_delta(snapshot)


def _warm_plan(specs: Sequence[ExperimentSpec]) -> list[tuple]:
    """Unique ``(clip, codec, rate)`` warm-up triples covering a batch.

    Covers everything a worker will encode: the streamed version, the
    pristine reference features, a fixed-rate reference when one is
    requested, and the whole MPEG-1 ladder for adaptive runs.
    """
    from repro.video.clips import MPEG_RATES_BPS

    plan: list[tuple] = []
    seen: set[tuple] = set()

    def add(entry: tuple) -> None:
        if entry not in seen:
            seen.add(entry)
            plan.append(entry)

    def expand(spec) -> None:
        if getattr(spec, "is_aggregate", False):
            for flow in spec.flows:
                expand(flow)
            return
        add((spec.clip, None, None))
        add((spec.clip, spec.codec, spec.encoding_rate_bps))
        if spec.reference == "fixed":
            add((spec.clip, spec.codec, spec.fixed_reference_rate_bps))
        if spec.adaptation:
            for rate in MPEG_RATES_BPS:
                add((spec.clip, "mpeg1", rate))

    for spec in specs:
        expand(spec)
    return plan


def _warm_worker_caches(plan: list[tuple]) -> None:
    """Pool initializer: pre-encode the batch's clips once per worker."""
    from repro.video.clips import warm_clip_caches

    warm_clip_caches(plan)


def _supervised_worker(conn, spec: ExperimentSpec) -> None:
    """Entry point of one supervised worker process.

    Sends ``("ok", summary, fastlane_delta)`` or ``("error",
    type_name, message)`` back over the pipe; a worker that dies
    without sending anything (crash, kill, ``os._exit``) is detected
    by the supervisor through its exit code, and one that never sends
    is reaped at the deadline. The receiver tolerates a two-element
    ``ok`` tuple, so older workers still parse.
    """
    try:
        outcome, delta = _pool_worker_stats(spec)
        conn.send(("ok", outcome, delta))
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:
            pass
    finally:
        conn.close()


class Runner:
    """Base class: the user-facing handle on campaign execution.

    A runner bundles an execution strategy with the result store, the
    retry policy, and a stats object; :meth:`run_batch` and
    :meth:`run_stream` hand all of it to the campaign scheduler, which
    owns sharding, work-stealing, the bounded in-flight window, cache
    lookups, single-flight leases, retries, and quarantine.

    ``shards`` overrides the scheduler's shard count (default: one per
    backend slot); ``window`` bounds queued+in-flight units;
    ``single_flight=False`` disables the cross-process lease path.
    Subclasses either map to a dedicated worker backend (see
    :func:`repro.core.campaign.backends.backend_for_runner`) or
    implement :meth:`_execute` for one-spec-at-a-time legacy
    execution.
    """

    def __init__(
        self,
        store: Optional["ResultStore"] = None,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
        window: Optional[int] = None,
        single_flight: bool = True,
    ):
        self.store = store
        self.retry = retry
        self.shards = shards
        self.window = window
        self.single_flight = single_flight
        self.stats = RunnerStats()

    def run_batch(
        self,
        specs: Sequence[ExperimentSpec],
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> list[BatchOutcome]:
        """Run every spec; returns outcomes in submission order.

        Cached points never re-simulate. Without a retry policy any
        spec failure propagates (the historical behaviour). With one,
        each slot resolves to either a summary or a
        :class:`FailureRecord` and the batch always returns.
        ``on_outcome`` fires once per slot as it resolves — which is
        what lets a sweep journal checkpoint incrementally.
        """
        from repro.core.campaign.scheduler import run_stream_through_scheduler

        specs = list(specs)
        outcomes: list[Optional[BatchOutcome]] = [None] * len(specs)

        def emit(unit, outcome, source) -> None:
            outcomes[unit.index] = outcome
            if on_outcome is not None:
                on_outcome(unit.spec, unit.fingerprint, outcome)

        run_stream_through_scheduler(
            self,
            specs,
            emit,
            plan_specs=specs,
            need_fingerprints=on_outcome is not None,
        )
        return outcomes  # type: ignore[return-value]

    def run_stream(
        self,
        specs,
        emit,
        plan_specs: Optional[Sequence[ExperimentSpec]] = None,
    ) -> None:
        """Stream a (possibly lazy) spec iterable; emit each outcome.

        Unlike :meth:`run_batch` nothing is accumulated: ``emit(unit,
        outcome, source)`` is the only place results surface, so a
        million-point grid flows through a bounded window instead of
        materializing. ``source`` is one of
        :data:`repro.core.campaign.scheduler.SOURCES`.
        """
        from repro.core.campaign.scheduler import run_stream_through_scheduler

        run_stream_through_scheduler(self, specs, emit, plan_specs=plan_specs)

    def make_backend(self, plan_specs: Optional[Sequence[ExperimentSpec]]):
        """Extension hook: build this runner's dedicated worker backend.

        Return a prepared :class:`~repro.core.campaign.backends.WorkerBackend`
        to bypass the built-in serial/pool mapping (the remote runner
        uses this), or ``None`` to let
        :func:`~repro.core.campaign.backends.backend_for_runner` pick.
        """
        return None

    def _execute(
        self, specs: Sequence[ExperimentSpec]
    ) -> list[ResultSummary]:
        """Legacy extension hook: execute specs, one call per unit."""
        raise NotImplementedError


class SerialRunner(Runner):
    """In-process, one-at-a-time execution.

    The only runner that can retain full-detail results: with
    ``keep_details=True``, :attr:`last_details` holds the
    :class:`ExperimentResult` of every point the most recent batch
    actually simulated (cache hits have no detail to keep), in
    execution order. Spec timeouts are enforced with ``SIGALRM``
    (main thread, Unix); elsewhere timeout enforcement degrades to
    none and the other retry machinery still applies.
    """

    def __init__(
        self,
        store: Optional["ResultStore"] = None,
        vqm_tool: Optional[VqmTool] = None,
        keep_details: bool = False,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
        window: Optional[int] = None,
        single_flight: bool = True,
    ):
        super().__init__(
            store=store,
            retry=retry,
            shards=shards,
            window=window,
            single_flight=single_flight,
        )
        self.vqm_tool = vqm_tool
        self.keep_details = keep_details
        self.last_details: list[ExperimentResult] = []


class ProcessPoolRunner(Runner):
    """Fan a batch out over worker processes.

    Workers build their own engine and VQM tool per spec, so results
    are a pure function of the spec — independent of worker count and
    bitwise-identical to :class:`SerialRunner` output.

    Two degradation paths keep a campaign alive when workers die:

    * without a retry policy, a batch whose pool breaks (a worker
      segfaulted or was OOM-killed) finishes in-process instead of
      aborting;
    * with a retry policy, each attempt runs in its own supervised
      process — a hung worker is terminated at the deadline, a dead
      one is detected by its exit code, and both are retried/
      quarantined per the policy. If processes cannot be spawned at
      all, execution degrades to in-process attempts.
    """

    def __init__(
        self,
        jobs: int,
        store: Optional["ResultStore"] = None,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
        window: Optional[int] = None,
        single_flight: bool = True,
    ):
        super().__init__(
            store=store,
            retry=retry,
            shards=shards,
            window=window,
            single_flight=single_flight,
        )
        if jobs < 1:
            raise ValueError(f"need at least one worker (jobs={jobs})")
        self.jobs = jobs


def make_runner(
    jobs: int = 1,
    store: Optional["ResultStore"] = None,
    vqm_tool: Optional[VqmTool] = None,
    retry: Optional[RetryPolicy] = None,
    shards: Optional[int] = None,
    window: Optional[int] = None,
    single_flight: bool = True,
) -> Runner:
    """The natural runner for a job count: serial for 1, pooled above."""
    if jobs <= 1:
        return SerialRunner(
            store=store,
            vqm_tool=vqm_tool,
            retry=retry,
            shards=shards,
            window=window,
            single_flight=single_flight,
        )
    return ProcessPoolRunner(
        jobs,
        store=store,
        retry=retry,
        shards=shards,
        window=window,
        single_flight=single_flight,
    )
