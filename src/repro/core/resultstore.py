"""On-disk result cache keyed by spec fingerprint.

One JSON file per experiment, named by the spec's content hash (see
:func:`repro.core.runner.spec_fingerprint`). Because the fingerprint
is salted with :data:`repro.core.runner.CACHE_SCHEMA_VERSION`, bumping
the schema version orphans old entries instead of mis-reading them;
each file also records the version it was written under as a second
line of defence.

Concurrency model — the store is safe for any number of writers:

* entries are content-addressed (the fingerprint names the file) and
  every publish is a tmp-file + ``os.replace``, so a reader observes
  either the old entry, the new entry, or nothing — never a torn
  write. A crash mid-write leaves only a hidden ``.tmp-*`` file, which
  reads as a miss and is swept by :meth:`ResultStore.reap_tmp`;
* entries carry a checksum over the summary payload, verified on read
  — a corrupted entry (bit rot, partial overwrite by an unrelated
  tool) is deleted-as-miss instead of poisoning a campaign. Entries
  written before checksums are still accepted, so the cache schema
  version did not change;
* :meth:`ResultStore.acquire_lease` provides cross-process
  single-flight: the first process to create ``<fingerprint>.lock``
  simulates, everyone else polls the cache for its publish. Leases
  are advisory (a stale one — dead pid or very old — is broken), so
  losing a lease race at worst duplicates work, exactly the old
  behaviour; it can never corrupt an entry.
"""

from __future__ import annotations

import json
import os
import socket
import time
from hashlib import sha256
from pathlib import Path
from typing import Optional, Union

from repro.core import runner as _runner
from repro.core.experiment import ExperimentSpec
from repro.core.runner import ResultSummary

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: A lease older than this is presumed orphaned even if its pid check
#: is inconclusive (e.g. pid recycled); no simulation runs this long.
LEASE_STALE_S = 3600.0

#: Orphaned ``.tmp-*`` publish files older than this are reaped.
TMP_STALE_S = 3600.0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def _summary_checksum(summary_dict: dict) -> str:
    """Hex digest over the canonical summary payload."""
    canonical = json.dumps(summary_dict, sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode("utf-8")).hexdigest()


class Lease:
    """Exclusive right to simulate one fingerprint, held via a lock file.

    Always release (the scheduler does so in a ``finally``); an
    unreleased lease from a crashed process is broken by the next
    acquirer once its pid is dead or it exceeds :data:`LEASE_STALE_S`.
    """

    def __init__(self, path: Path):
        self.path = path
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultStore:
    """Fingerprint-addressed cache of :class:`ResultSummary` entries."""

    def __init__(self, cache_dir: Union[str, Path, None] = None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _lease_path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.lock"

    def get(self, fingerprint: str) -> Optional[ResultSummary]:
        """The cached summary, or None on miss/corruption/stale schema.

        A corrupted or truncated entry (torn write, disk rot, checksum
        mismatch) is a cache miss, and the bad file is deleted on the
        spot so the next ``put`` rewrites it cleanly instead of the
        corruption surviving forever. Entries from an older schema
        version are left alone — they are valid files that simply no
        longer match any fingerprint the current code computes.
        """
        path = self._path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._discard(path)
            return None
        if data.get("schema_version") != _runner.CACHE_SCHEMA_VERSION:
            return None
        try:
            summary_dict = data["summary"]
            recorded = data.get("checksum")
            if recorded is not None and recorded != _summary_checksum(
                summary_dict
            ):
                # Payload no longer matches what the writer hashed:
                # partial overwrite or bit rot. Miss, and rewrite later.
                self._discard(path)
                return None
            return ResultSummary.from_dict(summary_dict)
        except (KeyError, TypeError, AttributeError):
            self._discard(path)
            return None

    #: Alias: ``load`` reads an entry with the same miss-and-discard
    #: semantics as :meth:`get`.
    load = get

    @staticmethod
    def _discard(path: Path) -> None:
        """Remove a corrupted entry; losing a race to do so is fine."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(
        self,
        fingerprint: str,
        spec: ExperimentSpec,
        summary: ResultSummary,
    ) -> None:
        """Write one entry atomically (tmp file + rename)."""
        import tempfile

        from repro.core.export import spec_to_dict

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        summary_dict = summary.to_dict()
        payload = {
            "fingerprint": fingerprint,
            "schema_version": _runner.CACHE_SCHEMA_VERSION,
            "spec": spec_to_dict(spec),
            "summary": summary_dict,
            "checksum": _summary_checksum(summary_dict),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Cross-process single-flight

    def acquire_lease(self, fingerprint: str) -> Optional[Lease]:
        """Try to claim exclusive simulation rights for a fingerprint.

        Returns a :class:`Lease` on success, None when another live
        process already holds one (the caller should poll :meth:`get`
        for that process's publish). A stale lease — holder pid dead
        (same-host leases only; the lock file records ``pid hostname``
        so a fleet sharing the cache dir never misjudges a foreign
        pid), or the lock file older than :data:`LEASE_STALE_S` — is
        broken and re-contended once.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(fingerprint)
        lease = self._try_create_lease(path)
        if lease is not None:
            return lease
        if self._lease_stale(path):
            self._discard(path)
            return self._try_create_lease(path)
        return None

    @staticmethod
    def _try_create_lease(path: Path) -> Optional[Lease]:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError:
            # Filesystem without O_EXCL semantics (some network
            # mounts): no lease, caller falls back to executing.
            return None
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()} {socket.gethostname()}")
        return Lease(path)

    @staticmethod
    def _lease_stale(path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
            holder = path.read_text().split()
        except OSError:
            # Vanished between our failed create and now: the holder
            # released. Worth re-contending.
            return True
        if age > LEASE_STALE_S:
            return True
        pid_text = holder[0] if holder else ""
        holder_host = holder[1] if len(holder) > 1 else None
        if holder_host is not None and holder_host != socket.gethostname():
            # A lease written on another host (shared cache dir across
            # a worker fleet): its pid namespace is invisible here, and
            # a recycled local pid would make os.kill lie either way.
            # Only the age bound can break a foreign lease.
            return False
        if pid_text.isdigit():
            try:
                os.kill(int(pid_text), 0)
            except ProcessLookupError:
                return True
            except (PermissionError, OSError):
                pass
        return False

    def reap_tmp(self, max_age_s: float = TMP_STALE_S) -> int:
        """Sweep orphaned ``.tmp-*`` publish files; returns count removed.

        A crash between ``mkstemp`` and ``os.replace`` leaves a hidden
        tmp file that no read path ever sees; this reclaims the disk.
        Fresh tmp files (another process mid-publish) are left alone.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        now = time.time()
        for path in self.cache_dir.glob(".tmp-*"):
            try:
                if now - path.stat().st_mtime >= max_age_s:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(
            1
            for p in self.cache_dir.glob("*.json")
            if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also removes leftover lease files — clearing a cache while a
        campaign holds leases is an operator action, not a race we
        defend against.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.cache_dir.glob("*.lock"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
