"""On-disk result cache keyed by spec fingerprint.

One JSON file per experiment, named by the spec's content hash (see
:func:`repro.core.runner.spec_fingerprint`). Because the fingerprint
is salted with :data:`repro.core.runner.CACHE_SCHEMA_VERSION`, bumping
the schema version orphans old entries instead of mis-reading them;
each file also records the version it was written under as a second
line of defence.

The store is deliberately dumb: no locking beyond atomic renames, no
eviction, no index. Entries are tiny (a few hundred bytes) and the
fingerprint space makes collisions a non-concern, so concurrent
writers at worst redo each other's work.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.core import runner as _runner
from repro.core.experiment import ExperimentSpec
from repro.core.runner import ResultSummary

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultStore:
    """Fingerprint-addressed cache of :class:`ResultSummary` entries."""

    def __init__(self, cache_dir: Union[str, Path, None] = None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[ResultSummary]:
        """The cached summary, or None on miss/corruption/stale schema.

        A corrupted or truncated entry (torn write, disk rot) is a
        cache miss, and the bad file is deleted on the spot so the next
        ``put`` rewrites it cleanly instead of the corruption surviving
        forever. Entries from an older schema version are left alone —
        they are valid files that simply no longer match any
        fingerprint the current code computes.
        """
        path = self._path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._discard(path)
            return None
        if data.get("schema_version") != _runner.CACHE_SCHEMA_VERSION:
            return None
        try:
            return ResultSummary.from_dict(data["summary"])
        except (KeyError, TypeError, AttributeError):
            self._discard(path)
            return None

    #: Alias: ``load`` reads an entry with the same miss-and-discard
    #: semantics as :meth:`get`.
    load = get

    @staticmethod
    def _discard(path: Path) -> None:
        """Remove a corrupted entry; losing a race to do so is fine."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(
        self,
        fingerprint: str,
        spec: ExperimentSpec,
        summary: ResultSummary,
    ) -> None:
        """Write one entry atomically (tmp file + rename)."""
        from repro.core.export import spec_to_dict

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": fingerprint,
            "schema_version": _runner.CACHE_SCHEMA_VERSION,
            "spec": spec_to_dict(spec),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(
            1
            for p in self.cache_dir.glob("*.json")
            if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
