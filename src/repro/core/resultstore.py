"""On-disk result cache keyed by spec fingerprint.

One JSON file per experiment, named by the spec's content hash (see
:func:`repro.core.runner.spec_fingerprint`). Because the fingerprint
is salted with :data:`repro.core.runner.CACHE_SCHEMA_VERSION`, bumping
the schema version orphans old entries instead of mis-reading them;
each file also records the version it was written under as a second
line of defence.

Concurrency model — the store is safe for any number of writers:

* entries are content-addressed (the fingerprint names the file) and
  every publish is a tmp-file + ``os.replace``, so a reader observes
  either the old entry, the new entry, or nothing — never a torn
  write. A crash mid-write leaves only a hidden ``.tmp-*`` file, which
  reads as a miss and is swept by :meth:`ResultStore.reap_tmp`;
* entries carry a checksum over the summary payload, verified on read
  — a corrupted entry (bit rot, partial overwrite by an unrelated
  tool) is deleted-as-miss instead of poisoning a campaign. Entries
  written before checksums are still accepted, so the cache schema
  version did not change;
* :meth:`ResultStore.acquire_lease` provides cross-process
  single-flight: the first process to create ``<fingerprint>.lock``
  simulates, everyone else polls the cache for its publish. Leases
  are advisory (a stale one — dead pid or very old — is broken), so
  losing a lease race at worst duplicates work, exactly the old
  behaviour; it can never corrupt an entry.

Lease liveness and fencing (the fleet-scale refinements):

* every lease carries a random *fence token*. A holder can
  :meth:`Lease.renew` (touch the lock file's mtime) and check
  :meth:`Lease.still_held`; :meth:`ResultStore.put` takes the lease
  and *discards the publish* when the token no longer matches — a
  stale holder that lost its lease to a reclaim cannot double-publish
  (harmless content-wise, since outcomes are pure functions of their
  specs, but fencing keeps the at-most-once accounting honest);
* a holder that promises renewal (``renewable=True``) records its
  renewal period in the lock file; such a lease is declared stale as
  soon as its mtime falls :data:`LEASE_RENEW_GRACE` periods behind —
  seconds, not the :data:`LEASE_STALE_S` age bound — so a lease
  orphaned by a crashed *foreign-host* campaign is reclaimed almost
  immediately, while a live one (renewing on time) is never stolen.
  Non-renewing holders (a serial backend that blocks its event loop)
  simply don't make the promise and keep the conservative age rules.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from hashlib import sha256
from pathlib import Path
from typing import Optional, Union

from repro.core import runner as _runner
from repro.core.experiment import ExperimentSpec
from repro.core.runner import ResultSummary

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: A lease older than this is presumed orphaned even if its pid check
#: is inconclusive (e.g. pid recycled); no simulation runs this long.
LEASE_STALE_S = 3600.0

#: Orphaned ``.tmp-*`` publish files older than this are reaped.
TMP_STALE_S = 3600.0

#: Default renewal period a renewable lease promises (seconds). The
#: holder touches the lock file this often while it simulates.
LEASE_RENEW_S = 2.0

#: A renewable lease whose mtime is this many renewal periods old has
#: broken its promise and is reclaimable — on any host, in seconds.
LEASE_RENEW_GRACE = 5.0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def _summary_checksum(summary_dict: dict) -> str:
    """Hex digest over the canonical summary payload."""
    canonical = json.dumps(summary_dict, sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode("utf-8")).hexdigest()


class Lease:
    """Exclusive right to simulate one fingerprint, held via a lock file.

    Always release (the scheduler does so in a ``finally``); an
    unreleased lease from a crashed process is broken by the next
    acquirer once its renewal promise lapses, its pid is dead, or it
    exceeds :data:`LEASE_STALE_S`.

    ``token`` is the fence: the lock file records it, and every
    renew/release/publish first checks the file still carries it. A
    lease reclaimed by someone else therefore turns inert — it stops
    renewing, refuses to publish, and will not unlink the usurper's
    lock file.
    """

    def __init__(
        self, path: Path, token: str = "", renew_s: Optional[float] = None
    ):
        self.path = path
        self.token = token
        self.renew_s = renew_s
        self._released = False
        self._lost = False

    def still_held(self) -> bool:
        """Whether the lock file still carries this lease's token."""
        if self._released or self._lost:
            return False
        if not self.token:
            return True  # pre-fencing lease object: assume held
        try:
            fields = self.path.read_text().split()
        except OSError:
            self._lost = True
            return False
        if len(fields) < 3 or fields[2] != self.token:
            self._lost = True
            return False
        return True

    def renew(self) -> bool:
        """Touch the renewal stamp; False once the lease was stolen."""
        if not self.still_held():
            return False
        try:
            os.utime(self.path)
        except OSError:
            self._lost = True
            return False
        return True

    def release(self) -> None:
        if self._released:
            return
        released_ours = self.still_held() or not self.token
        self._released = True
        if not released_ours:
            # Stolen: the lock file (if any) belongs to the usurper.
            return
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultStore:
    """Fingerprint-addressed cache of :class:`ResultSummary` entries."""

    def __init__(self, cache_dir: Union[str, Path, None] = None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _lease_path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.lock"

    def get(self, fingerprint: str) -> Optional[ResultSummary]:
        """The cached summary, or None on miss/corruption/stale schema.

        A corrupted or truncated entry (torn write, disk rot, checksum
        mismatch) is a cache miss, and the bad file is deleted on the
        spot so the next ``put`` rewrites it cleanly instead of the
        corruption surviving forever. Entries from an older schema
        version are left alone — they are valid files that simply no
        longer match any fingerprint the current code computes.
        """
        path = self._path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._discard(path)
            return None
        if data.get("schema_version") != _runner.CACHE_SCHEMA_VERSION:
            return None
        try:
            summary_dict = data["summary"]
            recorded = data.get("checksum")
            if recorded is not None and recorded != _summary_checksum(
                summary_dict
            ):
                # Payload no longer matches what the writer hashed:
                # partial overwrite or bit rot. Miss, and rewrite later.
                self._discard(path)
                return None
            return ResultSummary.from_dict(summary_dict)
        except (KeyError, TypeError, AttributeError):
            self._discard(path)
            return None

    #: Alias: ``load`` reads an entry with the same miss-and-discard
    #: semantics as :meth:`get`.
    load = get

    @staticmethod
    def _discard(path: Path) -> None:
        """Remove a corrupted entry; losing a race to do so is fine."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(
        self,
        fingerprint: str,
        spec: ExperimentSpec,
        summary: ResultSummary,
        lease: Optional[Lease] = None,
    ) -> bool:
        """Write one entry atomically (tmp file + rename).

        With ``lease`` the publish is *fenced*: if the lease was
        reclaimed while the caller simulated (its fence token no
        longer in the lock file), the entry is NOT written and False
        is returned — the reclaiming holder owns the publish now. A
        fenced-off write would be byte-identical anyway (outcomes are
        pure functions of their specs), so fencing exists to keep the
        at-most-once accounting and stats honest, not to avert
        corruption. Returns True when the entry was written.
        """
        import tempfile

        from repro.core.export import spec_to_dict

        if lease is not None and not lease.still_held():
            return False
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        summary_dict = summary.to_dict()
        payload = {
            "fingerprint": fingerprint,
            "schema_version": _runner.CACHE_SCHEMA_VERSION,
            "spec": spec_to_dict(spec),
            "summary": summary_dict,
            "checksum": _summary_checksum(summary_dict),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    # ------------------------------------------------------------------
    # Cross-process single-flight

    def acquire_lease(
        self, fingerprint: str, renewable: bool = False
    ) -> Optional[Lease]:
        """Try to claim exclusive simulation rights for a fingerprint.

        Returns a :class:`Lease` on success, None when another live
        process already holds one (the caller should poll :meth:`get`
        for that process's publish). A stale lease is broken and
        re-contended once. Staleness depends on what the holder wrote
        into the lock file (``pid hostname token [renew_s]``):

        * a holder that promised renewal (fourth field) is stale as
          soon as its mtime lapses :data:`LEASE_RENEW_GRACE` renewal
          periods — a crashed fleet's lease is reclaimed in seconds,
          on any host, while a live holder renewing on time is never
          stolen;
        * otherwise, same-host leases are stale when the pid is dead,
          and any lease is stale past :data:`LEASE_STALE_S` (the
          conservative pre-renewal rules; foreign-host pids are never
          probed — pid namespaces don't span hosts).

        ``renewable=True`` makes *this* lease promise renewal (the
        period is :attr:`lease_renew_s`); only do so when the holder
        will actually call :meth:`Lease.renew` on time — a blocked
        event loop that cannot renew should not promise.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(fingerprint)
        lease = self._try_create_lease(path, renewable)
        if lease is not None:
            return lease
        if self._lease_stale(path):
            self._discard(path)
            return self._try_create_lease(path, renewable)
        return None

    #: Renewal period written into renewable leases (overridable per
    #: store instance; tests shrink it to exercise reclaim fast).
    lease_renew_s = LEASE_RENEW_S

    def _try_create_lease(
        self, path: Path, renewable: bool = False
    ) -> Optional[Lease]:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError:
            # Filesystem without O_EXCL semantics (some network
            # mounts): no lease, caller falls back to executing.
            return None
        token = secrets.token_hex(8)
        renew_s = float(self.lease_renew_s) if renewable else None
        fields = f"{os.getpid()} {socket.gethostname()} {token}"
        if renew_s is not None:
            fields += f" {renew_s:g}"
        with os.fdopen(fd, "w") as handle:
            handle.write(fields)
        return Lease(path, token=token, renew_s=renew_s)

    @staticmethod
    def _lease_stale(path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
            holder = path.read_text().split()
        except OSError:
            # Vanished between our failed create and now: the holder
            # released. Worth re-contending.
            return True
        if age > LEASE_STALE_S:
            return True
        if len(holder) > 3:
            # A renewal promise: the holder touches the file every
            # renew_s while alive, so a stale stamp means a dead or
            # wedged holder — reclaim in seconds, foreign or not.
            try:
                renew_s = float(holder[3])
            except ValueError:
                renew_s = LEASE_RENEW_S
            if age > max(renew_s * LEASE_RENEW_GRACE, 1.0):
                return True
        pid_text = holder[0] if holder else ""
        holder_host = holder[1] if len(holder) > 1 else None
        if holder_host is not None and holder_host != socket.gethostname():
            # A lease written on another host (shared cache dir across
            # a worker fleet): its pid namespace is invisible here, and
            # a recycled local pid would make os.kill lie either way.
            # Only the age/renewal bounds can break a foreign lease.
            return False
        if pid_text.isdigit():
            try:
                os.kill(int(pid_text), 0)
            except ProcessLookupError:
                return True
            except (PermissionError, OSError):
                pass
        return False

    def sweep_stale_leases(self) -> int:
        """Break every stale lease in the store; returns count removed.

        Campaign-startup hygiene: a crashed fleet leaves ``.lock``
        litter that would otherwise make the next campaign's first
        touch of each fingerprint wait out the staleness rules one by
        one. Live leases (renewing on time, or held by a live local
        pid) are never touched.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        for path in self.cache_dir.glob("*.lock"):
            try:
                if self._lease_stale(path):
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def reap_tmp(self, max_age_s: float = TMP_STALE_S) -> int:
        """Sweep orphaned ``.tmp-*`` publish files; returns count removed.

        A crash between ``mkstemp`` and ``os.replace`` leaves a hidden
        tmp file that no read path ever sees; this reclaims the disk.
        Fresh tmp files (another process mid-publish) are left alone.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        now = time.time()
        for path in self.cache_dir.glob(".tmp-*"):
            try:
                if now - path.stat().st_mtime >= max_age_s:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(
            1
            for p in self.cache_dir.glob("*.json")
            if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also removes leftover lease files — clearing a cache while a
        campaign holds leases is an operator action, not a race we
        defend against.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.cache_dir.glob("*.lock"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
