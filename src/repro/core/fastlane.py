"""Fast-lane dispatch: when can a spec skip the event engine?

:func:`repro.core.experiment.run_experiment` consults this module
before building an engine. A *qualifying* spec — the plain QBone
VideoCharger session that dominates every paper figure — is routed to
:mod:`repro.sim.fastpath`, which produces a bit-identical
:class:`~repro.core.experiment.ExperimentResult` at a fraction of the
cost. Everything else (recovery, adaptation, cross traffic, other
testbeds/servers) falls back to the event engine unchanged.

The override knob is the ``REPRO_FASTPATH`` environment variable:

``auto`` (default)
    Use the fast path when the spec qualifies, the engine otherwise.
``0``
    Never use the fast path (forces the event engine everywhere; the
    equivalence tests and the bench harness use this as the control).
``1``
    Require the fast path: a non-qualifying spec raises
    :class:`FastpathUnsupported` instead of silently degrading.
    Debug/bench knob — it guarantees the fast lane actually ran.

Because results are bit-identical, dispatch is invisible to the cache
layer: fingerprints are unchanged and fast-path/engine runs populate
the same cache entries interchangeably.

The *batch* lane (``REPRO_BATCHPATH``) sits one level up: the campaign
scheduler coalesces adjacent qualifying work units that differ only in
``(token_rate_bps, bucket_depth_bytes, seed)`` and hands the whole
grid to :func:`run_batchpath`, which amortizes the shared front end
(schedule, jitter replay) across the grid and vectorizes the
token-bucket scan over the rate×depth axis — still bit-identical per
point.

``auto`` (default)
    Coalesce qualifying units when the backend supports it.
``0``
    Never batch (per-unit execution everywhere; the control lane).
``1``
    Batch even singleton qualifying units (test/bench knob — it
    guarantees the batch lane actually ran).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    assess_playback,
)
from repro.client.playout import PlayoutClient
from repro.sim.fastpath import simulate_qbone_session
from repro.video.clips import encode_clip
from repro.vqm.tool import VqmTool

#: Environment variable controlling dispatch (see module docstring).
FASTPATH_ENV = "REPRO_FASTPATH"

#: Environment variable controlling batch coalescing (see module docstring).
BATCHPATH_ENV = "REPRO_BATCHPATH"

#: Spec fields along which a batch grid may vary; everything else must
#: match for two units to share a schedule/jitter front end.
BATCH_AXES = ("token_rate_bps", "bucket_depth_bytes", "seed")


class FastpathUnsupported(RuntimeError):
    """``REPRO_FASTPATH=1`` met a spec the fast path cannot serve."""


@dataclass
class FastlaneStats:
    """Dispatch counters (in-process; the bench harness reads these).

    Counters are per-process: pool/remote workers accumulate their own
    copies and ship deltas back to the parent, which folds them into
    :class:`repro.core.runner.RunnerStats` for the CLI stats line.
    """

    hits: int = 0
    fallbacks: int = 0
    batch_points: int = 0  # grid points served by the batch lane
    batch_groups: int = 0  # batched calls (one per coalesced grid)

    @property
    def dispatches(self) -> int:
        """Total dispatch decisions taken."""
        return self.hits + self.fallbacks

    @property
    def hit_rate(self) -> float:
        """Fraction of dispatches served by the fast path (0 when idle)."""
        total = self.dispatches
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero the counters (test/bench isolation)."""
        self.hits = 0
        self.fallbacks = 0
        self.batch_points = 0
        self.batch_groups = 0

    def as_dict(self) -> dict:
        """Counter snapshot (for cross-process deltas)."""
        return {
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "batch_points": self.batch_points,
            "batch_groups": self.batch_groups,
        }

    def delta_since(self, snapshot: dict) -> dict:
        """Counters accumulated since ``snapshot`` (an :meth:`as_dict`)."""
        return {
            key: value - snapshot.get(key, 0)
            for key, value in self.as_dict().items()
        }


#: Module-level counters; ``REPRO_FASTPATH=0`` runs count as neither.
stats = FastlaneStats()


def fastpath_mode() -> str:
    """Current override mode: ``"auto"``, ``"0"``, or ``"1"``."""
    mode = os.environ.get(FASTPATH_ENV, "auto").strip().lower()
    if mode in ("0", "1"):
        return mode
    return "auto"


def qualifies_for_fastpath(spec: ExperimentSpec) -> bool:
    """True when the analytic pipeline models this spec exactly.

    The fast path covers the default QBone topology end to end: a
    VideoCharger CBR server over UDP, a drop or remark policer, an
    optional edge shaper (replayed by the analytic recurrence in
    :func:`repro.sim.fastpath.shaper_releases`), no cross traffic, and
    none of the stateful machinery (ARQ, FEC, adaptation, feedback,
    bounded client buffers) that needs the event loop's feedback
    cycles.
    """
    if getattr(spec, "is_aggregate", False):
        # Multi-flow aggregates have their own lanes (repro.flows);
        # guard first — AggregateSpec lacks the flat spec fields.
        return False
    return (
        spec.testbed == "qbone"
        and spec.server == "videocharger"
        and spec.transport == "udp"
        and spec.policer_action in ("drop", "remark")
        and spec.cross_traffic_bps == 0
        and not spec.adaptation
        and not spec.arq
        and not spec.fec_group
        and not spec.feedback_loss
        and spec.client_buffer_frames == 0
    )


def use_fastpath(spec: ExperimentSpec) -> bool:
    """Dispatch decision for one spec, honouring ``REPRO_FASTPATH``."""
    mode = fastpath_mode()
    if mode == "0":
        return False
    if qualifies_for_fastpath(spec):
        stats.hits += 1
        return True
    if mode == "1":
        raise FastpathUnsupported(
            f"REPRO_FASTPATH=1 but spec does not qualify for the fast path: "
            f"{spec!r}"
        )
    stats.fallbacks += 1
    return False


def batchpath_mode() -> str:
    """Current batch-coalescing mode: ``"auto"``, ``"0"``, or ``"1"``."""
    mode = os.environ.get(BATCHPATH_ENV, "auto").strip().lower()
    if mode in ("0", "1"):
        return mode
    return "auto"


def qualifies_for_batch(spec: ExperimentSpec) -> bool:
    """True when the spec can join a coalesced batch grid.

    Batchable specs are the fast-path population minus trace capture
    (per-packet traces are inherently per-point and would defeat the
    shared-outcome dedup).
    """
    if getattr(spec, "is_aggregate", False):
        return False
    return qualifies_for_fastpath(spec) and not spec.capture_trace


def batch_key(spec: ExperimentSpec) -> ExperimentSpec:
    """Grouping key: the spec with the grid axes neutralized.

    Two qualifying specs with equal keys share their message schedule,
    emission/link recurrences, and (per seed) the jitter RNG replay, so
    the scheduler may run them as one array program.
    """
    return replace(spec, token_rate_bps=0.0, bucket_depth_bytes=0.0, seed=0)


def run_batchpath(
    specs: Sequence[ExperimentSpec], vqm_tool: Optional[VqmTool] = None
):
    """Run a grid of qualifying specs as one array program.

    Returns one :class:`~repro.core.runner.ResultSummary` per spec, in
    input order, each bit-identical to what the engine or the scalar
    fast path would have produced for that spec alone.
    """
    from repro.sim.batchpath import run_batch_specs

    summaries = run_batch_specs(specs, vqm_tool=vqm_tool)
    stats.batch_points += len(specs)
    stats.batch_groups += 1
    return summaries


def result_from_session(
    spec: ExperimentSpec,
    encoded,
    session,
    vqm_tool: Optional[VqmTool] = None,
) -> ExperimentResult:
    """Offline stages shared by the scalar and batched fast lanes.

    A real PlayoutClient finalizes the session so FrameRecord
    construction and GOP decodability are literally the same code as
    the engine path; only the per-packet bookkeeping was vectorized.
    """
    client = PlayoutClient(
        None,
        encoded,
        startup_delay=spec.startup_delay_s,
        decode_mode=spec.decode_mode,
        buffer_cap_frames=spec.client_buffer_frames,
    )
    client._received_bytes = session.received_bytes
    client._completion = session.completion
    client._first_arrival = session.first_arrival
    client.received_packets = session.received_packets
    record = client.finalize()

    trace, vqm = assess_playback(spec, record, vqm_tool)
    extras = {
        "server_packets": session.server_packets,
        "client_packets": session.received_packets,
        "network": session.network_summary(),
    }
    if session.trace_payload is not None:
        extras["flow_trace"] = session.trace_payload
    return ExperimentResult(
        spec=spec,
        vqm=vqm,
        lost_frame_fraction=record.lost_frame_fraction,
        policer_stats=session.policer_stats,
        trace=trace,
        client_record=record,
        server_aborted=False,
        extras=extras,
    )


def run_fastpath(
    spec: ExperimentSpec, vqm_tool: Optional[VqmTool] = None
) -> ExperimentResult:
    """Produce the full :class:`ExperimentResult` without an engine.

    The network timeline comes from
    :func:`repro.sim.fastpath.simulate_qbone_session`; the offline
    stages (playout finalize, renderer replay, VQM, path metrics) are
    the same code the engine path runs, fed identical inputs.
    """
    from repro.recovery.session import validate_recovery

    validate_recovery(spec)  # parity with the engine path's validation
    encoded = encode_clip(spec.clip, spec.codec, spec.encoding_rate_bps)
    session = simulate_qbone_session(spec, encoded)
    return result_from_session(spec, encoded, session, vqm_tool)
