"""Observer's view of a trace payload.

A :class:`FlowTrace` wraps the payload emitted by trace-enabled
experiments (see :mod:`repro.sim.tracer`) and exposes only what a
detecting endpoint could legitimately observe:

* the *send-side* record — every packet's pre-decision timestamp and
  size at the bottleneck ingress (the policer point's ``time``/``size``
  columns, which are recorded before the verdict exists);
* the *receive-side* record — which packet ids arrived, and with which
  DSCP.

The policer point's ``verdict`` / ``drop_reason`` / token-state columns
are ground truth: the detector never reads them, and this class only
surfaces them through the explicitly named :meth:`ground_truth_verdicts`
accessor that the validation suite and the CLI's accuracy report use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.tracer import TRACE_SCHEMA_VERSION


@dataclass(frozen=True)
class FlowTrace:
    """One flow's observable send/receive history.

    ``times`` / ``sizes`` / ``packet_ids`` are parallel arrays in send
    order; ``received_dscp`` maps delivered packet id → observed
    codepoint (absence means loss).
    """

    times: np.ndarray  # ingress observation time per sent packet
    sizes: np.ndarray  # wire bytes per sent packet
    packet_ids: np.ndarray  # send-order packet ids
    received_dscp: dict  # delivered id -> DSCP at the receiver

    @classmethod
    def from_payload(cls, payload: dict) -> "FlowTrace":
        """Build the observer view from a trace payload dict."""
        version = payload.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema version {version!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        policer = payload["policer"]
        receiver = payload["receiver"]
        return cls(
            times=np.asarray(policer["time"], dtype=np.float64),
            sizes=np.asarray(policer["size"], dtype=np.float64),
            packet_ids=np.asarray(policer["packet_id"], dtype=np.int64),
            received_dscp=dict(
                zip(receiver["packet_id"], receiver["dscp"])
            ),
        )

    @property
    def n_sent(self) -> int:
        """Packets observed entering the bottleneck."""
        return len(self.packet_ids)

    def delivered_mask(self) -> np.ndarray:
        """Send-order mask: did the packet reach the receiver?"""
        return np.array(
            [int(pid) in self.received_dscp for pid in self.packet_ids],
            dtype=bool,
        )

    def conformance_mask(self, conform_dscp: int) -> np.ndarray:
        """Send-order mask: delivered *and* carrying the conform DSCP.

        This is the detector's working definition of conformance: a
        dropped packet is missing, a remarked one arrives with a
        different codepoint, and both count as non-conformant.
        """
        return np.array(
            [
                self.received_dscp.get(int(pid)) == conform_dscp
                for pid in self.packet_ids
            ],
            dtype=bool,
        )

    def remarked_mask(self, conform_dscp: int) -> np.ndarray:
        """Send-order mask: delivered but with a non-conform DSCP."""
        return np.array(
            [
                int(pid) in self.received_dscp
                and self.received_dscp[int(pid)] != conform_dscp
                for pid in self.packet_ids
            ],
            dtype=bool,
        )


def ground_truth_verdicts(payload: dict) -> list:
    """The policer's actual per-packet verdicts, in send order.

    Validation-only accessor: this reads the ground-truth columns the
    detector itself is forbidden to touch. Used by the closed-loop
    suite and the CLI's accuracy report to score the inference.
    """
    return list(payload["policer"]["verdict"])
