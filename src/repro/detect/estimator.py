"""Token-bucket parameter inference from one flow's trace.

Given the send-side record (times, sizes) and the per-packet
conformance outcome (delivered with the conform DSCP, or not), recover
the token rate ``r`` and bucket depth ``b`` of the policer that
produced it. Three stages:

**1. Pooled inter-drop accounting (initial rate).** Between two
consecutive non-conformant packets at times ``t_i < t_j``, the bucket
gained ``r·(t_j − t_i)`` tokens and spent ``B`` bytes on the
conformant packets in between, so ``r·Δt = B + (fill_j − fill_i)``
where each fill is in ``[0, MTU)`` — the per-pair rate ``B/Δt`` is
exact to within one MTU per gap. A Δt-weighted median of the pair
rates gives a first guess that idle gaps cannot poison (a gap long
enough to refill the bucket to its cap breaks the balance and biases
``B/Δt`` low); pairs inconsistent with the running estimate by more
than 1.5 MTU are then excluded and the survivors pooled
(``ΣB / ΣΔt``), iterated to a fixed point.

**2. Depth-free replay (feasibility + depth bounds).** For a candidate
rate, replay the arrival sequence tracking the bucket *deficit*
``U = b − fill``: it decays at ``r`` (floored at zero, the bucket's
cap) and grows by each conformant packet's size — a recurrence that
never references ``b``. Each conformant packet then demands
``b ≥ U + size`` (tokens were available) and each non-conformant one
demands ``b < U + size`` (they were not), yielding
``b_lo = max(conformant demands)`` and ``b_hi = min(non-conformant
demands)``. A candidate rate is *feasible* iff ``b_lo < b_hi``; random
(non-policer) loss produces contradictory demands and no feasible
rate, which is exactly how the detector rejects it.

**3. Feasibility-interval refinement.** The feasible rates form an
interval around the truth — but a heavily-constrained trace (hundreds
of drops) pins it to within *tens of bits per second*, far narrower
than any fixed grid. The search therefore zooms: scan a coarse grid
around the initial estimate, re-center on the best (least-infeasible)
margin, shrink the window, and repeat until a feasible rate appears;
then bisect the interval's edges. ``r̂`` is the interval midpoint with
the interval itself as the confidence band, and ``b̂`` is the midpoint
of ``(b_lo, b_hi)`` at ``r̂``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import ETHERNET_MTU

#: Cascaded zoom: each level scans ``_ZOOM_POINTS`` rates across the
#: current window, re-centers on the best (least-infeasible) margin,
#: and shrinks the half-width to ``_ZOOM_GUARD`` grid spacings — a
#: ×16 zoom per level with enough overlap that a basin straddling two
#: grid points is never lost. The first window is ±8% around the
#: pooled initial estimate; when a cascade bottoms out without finding
#: a feasible rate the search restarts from the next wider window
#: (cap-refill-heavy traffic can bias the initial estimate by more
#: than 8%). Each cascade gives up at a relative half-width of
#: ``_ZOOM_FLOOR`` (below the float64 resolution of any physical
#: window).
_ZOOM_STARTS = (0.08, 0.16, 0.32, 0.64)
_ZOOM_POINTS = 161
_ZOOM_GUARD = 5
_ZOOM_FLOOR = 1e-11
#: Bisection steps when tightening each feasibility edge.
_EDGE_STEPS = 25
#: Inter-drop pairs whose token balance misses by more than this many
#: MTUs are treated as cap-refill (idle) gaps and excluded.
_PAIR_SLACK_MTU = 1.5


@dataclass(frozen=True)
class TokenBucketEstimate:
    """Inferred ``(r̂, b̂)`` with confidence intervals.

    The rate interval is the feasible-rate band of the replay test;
    the depth interval is ``(b_lo, b_hi)`` at the point estimate.
    ``margin_bytes`` is the feasibility margin ``b_hi − b_lo`` there —
    how much room the constraints left (small margins mean the trace
    pinned the bucket tightly).
    """

    rate_bps: float
    rate_ci_bps: tuple
    depth_bytes: float
    depth_ci_bytes: tuple
    margin_bytes: float
    n_conformant: int
    n_nonconformant: int
    pairs_used: int

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary."""
        return {
            "rate_bps": self.rate_bps,
            "rate_ci_bps": list(self.rate_ci_bps),
            "depth_bytes": self.depth_bytes,
            "depth_ci_bytes": list(self.depth_ci_bytes),
            "margin_bytes": self.margin_bytes,
            "n_conformant": self.n_conformant,
            "n_nonconformant": self.n_nonconformant,
            "pairs_used": self.pairs_used,
        }


def replay_depth_bounds(times, sizes, conform, rate_bytes_per_s: float):
    """Depth bounds ``(b_lo, b_hi)`` implied by a candidate rate.

    Replays the deficit recurrence described in the module docstring.
    ``b_hi`` is ``inf`` when every packet conformed (nothing upper-
    bounds the depth); the candidate is feasible iff ``b_lo < b_hi``.
    """
    deficit = 0.0
    t_prev = 0.0
    b_lo = 0.0
    b_hi = math.inf
    for t, s, ok in zip(times, sizes, conform):
        dt = t - t_prev
        if dt > 0.0:
            deficit -= rate_bytes_per_s * dt
            if deficit < 0.0:
                deficit = 0.0
        t_prev = t
        demand = deficit + s
        if ok:
            if demand > b_lo:
                b_lo = demand
            deficit = demand  # the admitted bytes leave the bucket
        elif demand < b_hi:
            b_hi = demand
    return b_lo, b_hi


def _interdrop_rate(times, sizes, conform, mtu_bytes: float):
    """Initial rate (bytes/s) from pooled inter-drop accounting.

    Returns ``(rate, pairs_used)`` or ``(None, 0)`` when fewer than
    two non-conformant events exist or no usable pair remains.
    """
    drop_idx = np.flatnonzero(~conform)
    if len(drop_idx) < 2:
        return None, 0
    admitted = np.where(conform, sizes, 0.0)
    cum = np.concatenate(([0.0], np.cumsum(admitted)))
    dts = times[drop_idx[1:]] - times[drop_idx[:-1]]
    bytes_between = cum[drop_idx[1:]] - cum[drop_idx[:-1]]
    usable = dts > 0.0
    dts = dts[usable]
    bytes_between = bytes_between[usable]
    if not len(dts):
        return None, 0
    pair_rates = bytes_between / dts
    # Δt-weighted median: long gaps carry more information, but a
    # single cap-refill gap must not drag the estimate.
    order = np.argsort(pair_rates)
    weights = np.cumsum(dts[order])
    pivot = np.searchsorted(weights, weights[-1] / 2.0)
    rate = float(pair_rates[order[min(pivot, len(order) - 1)]])
    pairs_used = len(dts)
    slack = _PAIR_SLACK_MTU * mtu_bytes
    for _ in range(3):
        consistent = np.abs(rate * dts - bytes_between) <= slack
        if not consistent.any():
            break
        pooled = float(bytes_between[consistent].sum() / dts[consistent].sum())
        pairs_used = int(consistent.sum())
        if abs(pooled - rate) <= 1e-9 * max(rate, 1.0):
            rate = pooled
            break
        rate = pooled
    if rate <= 0.0:
        return None, 0
    return rate, pairs_used


def _grid_depth_bounds(times, sizes, conform, rates):
    """Vectorized :func:`replay_depth_bounds` over a whole rate grid.

    One pass over the packets updates every candidate rate's deficit
    in lockstep; element ``k`` of the returned arrays equals the
    scalar replay at ``rates[k]`` exactly (identical operations).
    """
    rates = np.asarray(rates, dtype=np.float64)
    deficit = np.zeros_like(rates)
    b_lo = np.zeros_like(rates)
    b_hi = np.full_like(rates, math.inf)
    t_prev = 0.0
    for t, s, ok in zip(times, sizes, conform):
        dt = t - t_prev
        if dt > 0.0:
            deficit = np.maximum(0.0, deficit - rates * dt)
        t_prev = t
        demand = deficit + s
        if ok:
            np.maximum(b_lo, demand, out=b_lo)
            deficit = demand
        else:
            np.minimum(b_hi, demand, out=b_hi)
    return b_lo, b_hi


def _feasible_run(grid, margins):
    """Indices of the connected feasible run containing the best margin."""
    feasible = np.flatnonzero(np.asarray(margins) > 0.0)
    if not len(feasible):
        return None
    best = feasible[int(np.argmax([margins[i] for i in feasible]))]
    lo = hi = int(best)
    while lo - 1 >= 0 and margins[lo - 1] > 0.0:
        lo -= 1
    while hi + 1 < len(grid) and margins[hi + 1] > 0.0:
        hi += 1
    return lo, hi


def _bisect_edge(times, sizes, conform, r_feasible, r_infeasible):
    """Tighten one feasibility edge between a good and a bad rate."""
    for _ in range(_EDGE_STEPS):
        mid = 0.5 * (r_feasible + r_infeasible)
        b_lo, b_hi = replay_depth_bounds(times, sizes, conform, mid)
        if b_lo < b_hi:
            r_feasible = mid
        else:
            r_infeasible = mid
    return r_feasible


def estimate_token_bucket(
    times,
    sizes,
    conform,
    mtu_bytes: float = float(ETHERNET_MTU),
):
    """Infer the policing token bucket behind one conformance record.

    Parameters are parallel send-order arrays: observation times,
    wire sizes, and the boolean conformance outcome per packet.
    Returns a :class:`TokenBucketEstimate`, or ``None`` when no token
    bucket is consistent with the record (too few events, or the
    non-conformance pattern is infeasible for every candidate rate —
    e.g. random loss).
    """
    times = np.asarray(times, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    conform = np.asarray(conform, dtype=bool)
    r0, pairs_used = _interdrop_rate(times, sizes, conform, mtu_bytes)
    if r0 is None:
        return None

    t_list = times.tolist()
    s_list = sizes.tolist()
    c_list = conform.tolist()

    # Cascaded zoom (see the schedule constants above). A heavily
    # constrained trace admits a feasible window well under 1 B/s wide
    # — the funnel toward it is what the re-centering follows.
    run = None
    for start in _ZOOM_STARTS:
        center = r0
        half = start * r0
        while half > _ZOOM_FLOOR * center:
            grid = np.linspace(center - half, center + half, _ZOOM_POINTS)
            b_los, b_his = _grid_depth_bounds(t_list, s_list, c_list, grid)
            margins = b_his - b_los
            run = _feasible_run(grid, margins)
            if run is not None:
                break
            spacing = 2.0 * half / (_ZOOM_POINTS - 1)
            center = float(grid[int(np.argmax(margins))])
            half = _ZOOM_GUARD * spacing
            if center <= 0.0:
                break
        if run is not None:
            break
    if run is None:
        return None
    lo_idx, hi_idx = run
    spacing = float(grid[1] - grid[0])

    def _bracket_edge(rate_feasible, direction):
        """Walk outward to an infeasible rate, then bisect the edge."""
        step = spacing
        probe = rate_feasible + direction * step
        for _ in range(60):
            b_lo, b_hi = replay_depth_bounds(t_list, s_list, c_list, probe)
            if not (b_lo < b_hi):
                return _bisect_edge(t_list, s_list, c_list, rate_feasible, probe)
            rate_feasible = probe
            step *= 2.0
            probe = rate_feasible + direction * step
            if probe <= 0.0:
                break
        return rate_feasible

    rate_lo = _bracket_edge(float(grid[lo_idx]), -1.0)
    rate_hi = _bracket_edge(float(grid[hi_idx]), +1.0)

    rate_hat = 0.5 * (rate_lo + rate_hi)
    b_lo, b_hi = replay_depth_bounds(t_list, s_list, c_list, rate_hat)
    if not (b_lo < b_hi):  # pragma: no cover - edges bisected feasible
        return None
    depth_hi = b_hi if math.isfinite(b_hi) else b_lo + mtu_bytes
    n_nonconf = int((~conform).sum())
    return TokenBucketEstimate(
        rate_bps=rate_hat * 8.0,
        rate_ci_bps=(rate_lo * 8.0, rate_hi * 8.0),
        depth_bytes=0.5 * (b_lo + depth_hi),
        depth_ci_bytes=(b_lo, depth_hi),
        margin_bytes=depth_hi - b_lo,
        n_conformant=int(conform.sum()),
        n_nonconformant=n_nonconf,
        pairs_used=pairs_used,
    )
