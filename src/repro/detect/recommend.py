"""Provisioning recommender: minimal EF parameters for a target quality.

The paper's operational finding (§4.1, Figure 7) is that the token
rate an EF flow must buy depends sharply on the bucket depth: with a
4500-byte bucket the *average* encoding rate suffices, while a
3000-byte bucket pushes the requirement toward the *maximum*
instantaneous rate. This module turns that finding into a computation:
for each candidate depth, binary-search the token rate (through the
existing runner/cache machinery, so probes are cached, poolable, and
fault-tolerant like any sweep point) for the smallest rate meeting a
quality bound, then classify each minimum against the clip's own
average and maximum encoding rates.

The search runs *lockstep*: each bisection iteration submits one probe
per still-active depth as a single batch, so a pooled runner
parallelizes across depths and a cached one re-simulates nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.faults import FailureRecord
from repro.core.runner import ResultSummary, Runner, SerialRunner
from repro.units import mbps
from repro.video.clips import encode_clip

#: A minimum rate within this factor of the clip's average encoding
#: rate classifies as "average-rate" provisioning...
AVG_RATE_SLACK = 1.10
#: ...and one at or above this fraction of the maximum instantaneous
#: rate classifies as "maximum-rate" provisioning.
MAX_RATE_SLACK = 0.85

#: Classification labels.
CLASS_AVERAGE = "average-rate"
CLASS_MAXIMUM = "maximum-rate"
CLASS_INTERMEDIATE = "intermediate"
CLASS_UNACHIEVABLE = "unachievable"


@dataclass(frozen=True)
class ProvisioningRow:
    """Minimal-rate answer for one bucket depth."""

    bucket_depth_bytes: float
    min_token_rate_bps: Optional[float]  # None: target unmet at rate_max
    achieved_quality_score: Optional[float]
    achieved_lost_frame_fraction: Optional[float]
    classification: str
    probes: int  # simulations this depth's search submitted

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ProvisioningTable:
    """The recommender's full answer for one clip and target."""

    clip: str
    codec: str
    encoding_rate_bps: Optional[float]
    target: dict  # {"metric": ..., "bound": ...}
    avg_rate_bps: float
    max_rate_bps: float
    rows: tuple

    def findings(self) -> dict:
        """Machine-checkable summary, including the paper's finding.

        When both the paper's depths (3000 and 4500 bytes) are in the
        table, ``paper_finding_reproduced`` asserts the headline
        result: the deep bucket admits average-rate provisioning while
        the shallow one demands maximum-rate provisioning.
        """
        by_depth = {int(row.bucket_depth_bytes): row for row in self.rows}
        out = {
            "avg_rate_bps": self.avg_rate_bps,
            "max_rate_bps": self.max_rate_bps,
            "per_depth": {
                str(int(row.bucket_depth_bytes)): {
                    "min_token_rate_bps": row.min_token_rate_bps,
                    "classification": row.classification,
                }
                for row in self.rows
            },
        }
        deep = by_depth.get(4500)
        shallow = by_depth.get(3000)
        if deep is not None and shallow is not None:
            out["deep_bucket_admits_average"] = (
                deep.classification == CLASS_AVERAGE
            )
            out["shallow_bucket_needs_maximum"] = (
                shallow.classification == CLASS_MAXIMUM
            )
            out["paper_finding_reproduced"] = (
                out["deep_bucket_admits_average"]
                and out["shallow_bucket_needs_maximum"]
            )
        return out

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary (rows + findings)."""
        return {
            "clip": self.clip,
            "codec": self.codec,
            "encoding_rate_bps": self.encoding_rate_bps,
            "target": dict(self.target),
            "avg_rate_bps": self.avg_rate_bps,
            "max_rate_bps": self.max_rate_bps,
            "rows": [row.to_dict() for row in self.rows],
            "findings": self.findings(),
        }


def classify_rate(
    rate_bps: Optional[float],
    avg_rate_bps: float,
    max_rate_bps: float,
    avg_slack: float = AVG_RATE_SLACK,
    max_slack: float = MAX_RATE_SLACK,
) -> str:
    """Place a minimal rate on the paper's average↔maximum axis."""
    if rate_bps is None:
        return CLASS_UNACHIEVABLE
    if rate_bps <= avg_slack * avg_rate_bps:
        return CLASS_AVERAGE
    if rate_bps >= max_slack * max_rate_bps:
        return CLASS_MAXIMUM
    return CLASS_INTERMEDIATE


def _run_batch(runner: Runner, specs) -> list:
    """One lockstep probe round; quarantined probes abort the search."""
    outcomes = runner.run_batch(specs)
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, FailureRecord):
            raise RuntimeError(
                f"provisioning probe quarantined "
                f"(r={spec.token_rate_bps:.0f} bps, "
                f"b={spec.bucket_depth_bytes:.0f} B): {outcome.describe()}"
            )
    return outcomes


def _meets(summary: ResultSummary, metric: str, bound: float) -> bool:
    return getattr(summary, metric) <= bound


def recommend_provisioning(
    base_spec,
    depths: Sequence[float] = (3000.0, 4500.0),
    runner: Optional[Runner] = None,
    target_quality_score: float = 0.05,
    target_lost_frames: Optional[float] = None,
    rate_min_bps: float = mbps(1.0),
    rate_max_bps: float = mbps(2.4),
    precision_bps: float = 20e3,
    avg_slack: float = AVG_RATE_SLACK,
    max_slack: float = MAX_RATE_SLACK,
) -> ProvisioningTable:
    """Minimal token rate per bucket depth meeting a quality target.

    ``base_spec`` fixes the clip, codec, and everything but the token
    bucket; each depth's rate is bisected over
    ``[rate_min_bps, rate_max_bps]`` to ``precision_bps``. The target
    is ``quality_score ≤ target_quality_score`` unless
    ``target_lost_frames`` is given, in which case
    ``lost_frame_fraction ≤ target_lost_frames`` governs. A depth whose
    target is unmet even at ``rate_max_bps`` is reported as
    ``"unachievable"`` rather than failing the table.
    """
    if not depths:
        raise ValueError("need at least one bucket depth")
    if rate_min_bps >= rate_max_bps:
        raise ValueError(
            f"rate_min_bps must be below rate_max_bps "
            f"({rate_min_bps:.0f} >= {rate_max_bps:.0f})"
        )
    if precision_bps <= 0:
        raise ValueError("precision_bps must be positive")
    if target_lost_frames is not None:
        metric, bound = "lost_frame_fraction", target_lost_frames
    else:
        metric, bound = "quality_score", target_quality_score
    runner = runner or SerialRunner()
    # Probes never need traces; keeping the flag off also keeps their
    # fingerprints shared with ordinary sweeps of the same grid.
    base = dataclasses.replace(base_spec, capture_trace=False)
    encoded = encode_clip(base.clip, base.codec, base.encoding_rate_bps)
    stats = encoded.rate_stats()

    depths = [float(d) for d in depths]
    probes = {d: 0 for d in depths}
    # Ceiling probe for every depth at once: a depth that fails at the
    # rate cap is settled in one round.
    ceiling_specs = [
        base.with_token_bucket(rate_max_bps, depth) for depth in depths
    ]
    ceiling = _run_batch(runner, ceiling_specs)
    search = {}  # depth -> [lo, hi, best_summary]
    settled = {}  # depth -> (min_rate or None, summary or None)
    for depth, summary in zip(depths, ceiling):
        probes[depth] += 1
        if _meets(summary, metric, bound):
            search[depth] = [rate_min_bps, rate_max_bps, summary]
        else:
            settled[depth] = (None, None)

    # Lockstep bisection: one probe per still-active depth per round.
    while search:
        active = [
            depth
            for depth, (lo, hi, _) in search.items()
            if hi - lo > precision_bps
        ]
        if not active:
            break
        batch = [
            base.with_token_bucket(
                0.5 * (search[depth][0] + search[depth][1]), depth
            )
            for depth in active
        ]
        outcomes = _run_batch(runner, batch)
        for depth, spec, summary in zip(active, batch, outcomes):
            probes[depth] += 1
            lo, hi, best = search[depth]
            if _meets(summary, metric, bound):
                search[depth] = [lo, spec.token_rate_bps, summary]
            else:
                search[depth] = [spec.token_rate_bps, hi, best]
    for depth, (lo, hi, best) in search.items():
        settled[depth] = (hi, best)

    rows = []
    for depth in depths:
        min_rate, summary = settled[depth]
        rows.append(
            ProvisioningRow(
                bucket_depth_bytes=depth,
                min_token_rate_bps=min_rate,
                achieved_quality_score=(
                    summary.quality_score if summary is not None else None
                ),
                achieved_lost_frame_fraction=(
                    summary.lost_frame_fraction if summary is not None else None
                ),
                classification=classify_rate(
                    min_rate,
                    stats["rate_avg_bps"],
                    stats["rate_max_bps"],
                    avg_slack=avg_slack,
                    max_slack=max_slack,
                ),
                probes=probes[depth],
            )
        )
    return ProvisioningTable(
        clip=base.clip,
        codec=base.codec,
        encoding_rate_bps=base.encoding_rate_bps,
        target={"metric": metric, "bound": bound},
        avg_rate_bps=stats["rate_avg_bps"],
        max_rate_bps=stats["rate_max_bps"],
        rows=tuple(rows),
    )
