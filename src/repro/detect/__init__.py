"""Policing detection and provisioning (the inverse problem).

Everything else in this repository *applies* a known token bucket and
measures the damage. This package looks at the problem from the other
side, the way an operator or an endpoint would: given only what a flow
can observe about itself — what was sent, what arrived, and with which
codepoint — decide whether the flow was policed, infer the token
bucket ``(r, b)`` that did it, and recommend the minimal EF parameters
that would meet a quality target.

Three entry points:

* :func:`detect_policing` — was this flow policed, and by what bucket?
  (:class:`DetectionVerdict` wrapping a :class:`TokenBucketEstimate`)
* :func:`estimate_token_bucket` — the raw ``(r̂, b̂)`` estimator with
  confidence intervals, for callers that already know the flow was
  policed.
* :func:`recommend_provisioning` — search the experiment machinery for
  the minimal token rate per bucket depth meeting a quality bound
  (:class:`ProvisioningTable`), reproducing the paper's average-rate
  vs maximum-rate finding as machine-checkable output.

Traces come from trace-enabled experiments
(``ExperimentSpec.capture_trace``); see :mod:`repro.sim.tracer` for
the payload schema and :class:`FlowTrace` for the observer's view of
it.
"""

from repro.detect.detector import (
    DetectionVerdict,
    detect_policing,
)
from repro.detect.estimator import (
    TokenBucketEstimate,
    estimate_token_bucket,
    replay_depth_bounds,
)
from repro.detect.recommend import (
    ProvisioningRow,
    ProvisioningTable,
    recommend_provisioning,
)
from repro.detect.trace import FlowTrace

__all__ = [
    "DetectionVerdict",
    "FlowTrace",
    "ProvisioningRow",
    "ProvisioningTable",
    "TokenBucketEstimate",
    "detect_policing",
    "estimate_token_bucket",
    "recommend_provisioning",
    "replay_depth_bounds",
]
