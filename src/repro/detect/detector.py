"""Was this flow policed? The yes/no layer over the estimator.

In the spirit of the USC-NSL ``policing_detector`` (see
``/root/related``): losses that a token-bucket policer produced leave
a recoverable signature — they happen exactly when the bucket runs
dry, so a depth-free replay of every candidate rate either finds a
consistent ``(r, b)`` region (policed) or proves the loss pattern
could not have come from any token bucket (congestion, random loss).
Remark-mode policing leaves the same signature in the received DSCPs
instead of in the loss set; the detector folds both into one
"non-conformant" outcome per packet and runs the same inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.detect.estimator import TokenBucketEstimate, estimate_token_bucket
from repro.detect.trace import FlowTrace
from repro.diffserv.dscp import DSCP
from repro.units import ETHERNET_MTU

#: Detection outcome codes.
CODE_POLICED = "policed"
CODE_NO_LOSS = "no-loss"
CODE_INSUFFICIENT = "insufficient-loss"
CODE_NONCONFORMANT = "nonconformant-loss"

#: Fewer non-conformant events than this and the inference is refused
#: rather than risked (the USC-NSL detector draws the same line).
MIN_EVENTS_DEFAULT = 5


@dataclass(frozen=True)
class DetectionVerdict:
    """The detector's answer for one flow trace.

    ``code`` is one of ``"policed"`` (a consistent token bucket was
    found), ``"no-loss"`` (every packet conformed — nothing to infer),
    ``"insufficient-loss"`` (too few events to call), and
    ``"nonconformant-loss"`` (losses exist but no token bucket explains
    them). ``action`` says how the policer treated excess traffic
    (``"drop"`` or ``"remark"``) when any non-conformance was seen.
    """

    policed: bool
    code: str
    action: Optional[str]
    n_packets: int
    n_lost: int
    n_remarked: int
    nonconform_fraction: float
    estimate: Optional[TokenBucketEstimate]

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary (the CLI's --json shape)."""
        return {
            "policed": self.policed,
            "code": self.code,
            "action": self.action,
            "n_packets": self.n_packets,
            "n_lost": self.n_lost,
            "n_remarked": self.n_remarked,
            "nonconform_fraction": self.nonconform_fraction,
            "estimate": (
                self.estimate.to_dict() if self.estimate is not None else None
            ),
        }


def detect_policing(
    payload,
    conform_dscp: int = int(DSCP.EF),
    mtu_bytes: float = float(ETHERNET_MTU),
    min_events: int = MIN_EVENTS_DEFAULT,
) -> DetectionVerdict:
    """Decide whether the traced flow was token-bucket policed.

    ``payload`` is a trace payload dict (or a ready
    :class:`FlowTrace`). ``conform_dscp`` is the codepoint conformant
    traffic is expected to carry (EF for the paper's experiments);
    packets delivered with any other codepoint count as remarked.
    """
    trace = (
        payload
        if isinstance(payload, FlowTrace)
        else FlowTrace.from_payload(payload)
    )
    delivered = trace.delivered_mask()
    conform = trace.conformance_mask(conform_dscp)
    remarked = trace.remarked_mask(conform_dscp)
    n_packets = trace.n_sent
    n_lost = int((~delivered).sum())
    n_remarked = int(remarked.sum())
    n_nonconform = n_lost + n_remarked
    fraction = n_nonconform / n_packets if n_packets else 0.0
    action = None
    if n_nonconform:
        action = "drop" if n_lost >= n_remarked else "remark"

    if n_nonconform == 0:
        return DetectionVerdict(
            policed=False,
            code=CODE_NO_LOSS,
            action=None,
            n_packets=n_packets,
            n_lost=0,
            n_remarked=0,
            nonconform_fraction=0.0,
            estimate=None,
        )
    if n_nonconform < min_events:
        return DetectionVerdict(
            policed=False,
            code=CODE_INSUFFICIENT,
            action=action,
            n_packets=n_packets,
            n_lost=n_lost,
            n_remarked=n_remarked,
            nonconform_fraction=fraction,
            estimate=None,
        )
    estimate = estimate_token_bucket(
        trace.times, trace.sizes, conform, mtu_bytes=mtu_bytes
    )
    if estimate is None:
        return DetectionVerdict(
            policed=False,
            code=CODE_NONCONFORMANT,
            action=action,
            n_packets=n_packets,
            n_lost=n_lost,
            n_remarked=n_remarked,
            nonconform_fraction=fraction,
            estimate=None,
        )
    return DetectionVerdict(
        policed=True,
        code=CODE_POLICED,
        action=action,
        n_packets=n_packets,
        n_lost=n_lost,
        n_remarked=n_remarked,
        nonconform_fraction=fraction,
        estimate=estimate,
    )
