"""The VQM tool: end-to-end quality assessment of a received session.

Inputs: the reference clip's feature streams, the *received* encoding's
feature streams (they differ from the reference in the fixed-reference
experiments), and the renderer's display trace. Output: per-segment
and clip-level quality scores plus the parameters behind them.

The received feature streams are constructed on the display timeline:
slot ``k`` carries the features of whichever encoded frame was shown
there (repeats repeat features; the TI stream is rebuilt from the
display sequence so freezes read as zero motion and skips as jumps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.client.renderer import DisplayTrace
from repro.video.frames import FrameFeatures
from repro.vqm.calibration import (
    DEFAULT_MIN_CORRELATION,
    DEFAULT_UNCERTAINTY,
    calibrate_segment,
)
from repro.vqm.model import QualityParameters, VqmModel, WORST_SCORE
from repro.vqm.segments import SCORING_FRAMES, Segment, segment_plan


@dataclass(frozen=True)
class SegmentScore:
    """Quality verdict for one segment."""

    segment: Segment
    score: float
    calibrated: bool
    lag: int
    parameters: Optional[QualityParameters]


@dataclass
class VqmResult:
    """Clip-level result: the mean of the segment scores (paper §3.1.3)."""

    clip_score: float
    segments: list[SegmentScore] = field(default_factory=list)

    @property
    def failed_segments(self) -> int:
        """Number of segments whose calibration failed."""
        return sum(1 for s in self.segments if not s.calibrated)

    def parameter_means(self) -> dict:
        """Average parameters over calibrated segments (diagnostics)."""
        rows = [s.parameters.as_dict() for s in self.segments if s.parameters]
        if not rows:
            return {}
        return {k: float(np.mean([r[k] for r in rows])) for k in rows[0]}


class VqmTool:
    """Reduced-reference quality assessment (see module docstring)."""

    def __init__(
        self,
        model: Optional[VqmModel] = None,
        alignment_uncertainty: int = DEFAULT_UNCERTAINTY,
        min_correlation: float = DEFAULT_MIN_CORRELATION,
    ):
        self.model = model or VqmModel()
        self.alignment_uncertainty = alignment_uncertainty
        self.min_correlation = min_correlation

    # ------------------------------------------------------------------
    def assess(
        self,
        reference: FrameFeatures,
        received_encoding: FrameFeatures,
        trace: DisplayTrace,
    ) -> VqmResult:
        """Score a received session against a reference clip version."""
        n_ref = reference.n_frames
        rcv = self._received_streams(received_encoding, trace, pad_to=n_ref)
        ref = {
            "si": reference.si,
            "hv": reference.hv,
            "ti": reference.ti,
            "y_mean": reference.y_mean,
            "u_mean": reference.u_mean,
            "v_mean": reference.v_mean,
        }
        clip_ti_scale = float(reference.ti.mean())

        scores: list[SegmentScore] = []
        for segment in segment_plan(n_ref):
            scores.append(
                self._score_segment(segment, ref, rcv, clip_ti_scale)
            )
        clip_score = float(np.mean([s.score for s in scores])) if scores else 0.0
        return VqmResult(clip_score=clip_score, segments=scores)

    # ------------------------------------------------------------------
    def _received_streams(
        self,
        encoding: FrameFeatures,
        trace: DisplayTrace,
        pad_to: int,
    ) -> dict:
        """Feature streams on the display timeline."""
        display = trace.display
        n = max(len(display), pad_to + self.alignment_uncertainty)
        idx = np.full(n, -1, dtype=np.int64)
        idx[: len(display)] = display
        if len(display) > 0 and len(display) < n:
            idx[len(display) :] = display[-1]  # screen holds last frame

        def mapped(stream: np.ndarray, dark_value: float) -> np.ndarray:
            out = np.full(n, dark_value, dtype=np.float32)
            shown = idx >= 0
            out[shown] = stream[idx[shown]]
            return out

        frozen = np.zeros(n, dtype=bool)
        frozen[1:] = idx[1:] == idx[:-1]
        frozen[idx < 0] = True  # dark screen counts as frozen

        ti = np.zeros(n, dtype=np.float32)
        changed = np.nonzero(~frozen[1:])[0] + 1
        for k in changed:
            if idx[k - 1] >= 0 and idx[k] >= 0:
                ti[k] = encoding.ti_between(int(idx[k - 1]), int(idx[k]))
            elif idx[k] >= 0:
                ti[k] = encoding.y_std[idx[k]]  # dark -> picture

        return {
            "si": mapped(encoding.si, 0.0),
            "hv": mapped(encoding.hv, 0.0),
            "y_mean": mapped(encoding.y_mean, 0.0),
            "u_mean": mapped(encoding.u_mean, 0.5),
            "v_mean": mapped(encoding.v_mean, 0.5),
            "ti": ti,
            "frozen": frozen,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_gain_correction(rcv_win: dict, calibration) -> dict:
        """Remove estimated systematic gain/level errors before scoring.

        The paper's calibration step exists "to remove systematic
        errors (i.e., gain, spatial shift, temporal shift) from the
        received video stream" — a capture chain with a contrast or
        brightness error must not be charged as network impairment.
        Luma-derived features are divided by the estimated gain and the
        luma level is re-centered; corrections are only applied when
        the estimate is in a sane range (wild estimates mean the
        segment is genuinely damaged, not mis-captured).
        """
        gain = calibration.gain
        offset = calibration.level_offset
        if not 0.5 <= gain <= 2.0:
            return rcv_win
        corrected = dict(rcv_win)
        # Invert y' = gain * y + b: remove the contrast gain around the
        # window's own mean, then re-center using the estimated level
        # offset (mean(y') - mean(y_ref)).
        y = rcv_win["y_mean"]
        window_mean = float(y.mean())
        corrected["y_mean"] = (y - window_mean) / gain + (window_mean - offset)
        for key in ("si", "ti", "y_std"):
            if key in rcv_win:
                corrected[key] = rcv_win[key] / gain
        return corrected

    def _calibrate(self, segment: Segment, ref: dict, rcv: dict):
        """Temporal alignment for one segment.

        Subclass hook: the batched lane substitutes a vectorized lag
        search that returns bit-identical
        :class:`~repro.vqm.calibration.CalibrationResult` objects.
        """
        return calibrate_segment(
            ref_profile=ref["y_mean"],
            ref_ti=ref["ti"],
            rcv_profile=rcv["y_mean"],
            rcv_ti=rcv["ti"],
            nominal_start=segment.start,
            length=segment.length,
            uncertainty=self.alignment_uncertainty,
            min_correlation=self.min_correlation,
        )

    def _score_segment(
        self,
        segment: Segment,
        ref: dict,
        rcv: dict,
        clip_ti_scale: float,
    ) -> SegmentScore:
        calibration = self._calibrate(segment, ref, rcv)
        if not calibration.succeeded:
            return SegmentScore(
                segment=segment,
                score=WORST_SCORE,
                calibrated=False,
                lag=calibration.lag,
                parameters=None,
            )

        # Score the SCORING_FRAMES following the alignment point.
        ref_start = segment.scoring_start
        ref_stop = min(ref_start + SCORING_FRAMES, segment.end)
        rcv_start = ref_start + calibration.lag
        rcv_stop = rcv_start + (ref_stop - ref_start)

        ref_win = {k: v[ref_start:ref_stop] for k, v in ref.items()}
        rcv_win = {k: v[rcv_start:rcv_stop] for k, v in rcv.items()}
        rcv_win = self._apply_gain_correction(rcv_win, calibration)
        params = self.model.extract_parameters(ref_win, rcv_win, clip_ti_scale)
        score = self.model.combine(params)
        return SegmentScore(
            segment=segment,
            score=score,
            calibrated=True,
            lag=calibration.lag,
            parameters=params,
        )
