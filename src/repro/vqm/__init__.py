"""Objective video quality measurement (the ITS VQM tool, rebuilt).

A reduced-reference quality meter in the style of ANSI T1.801.03-1996:
feature streams from the reference and received videos are compared
per segment, quality parameters are combined into a 0 (perfect) to 1
(worst) score, and segment scores average into a clip score.

Pipeline (paper §3.1): `segments` cuts the clip into 300-frame
segments with 100-frame overlap (Figure 3); `calibration` finds the
temporal alignment of each segment (and fails, scoring 1.0, when
impairments are too long — paper §3.1.3); `model` turns aligned
feature windows into quality parameters and a composite score;
`tool` orchestrates the whole assessment.
"""

from repro.vqm.segments import Segment, segment_plan
from repro.vqm.calibration import CalibrationResult, calibrate_segment
from repro.vqm.model import QualityParameters, VqmModel, WORST_SCORE
from repro.vqm.tool import VqmTool, VqmResult, SegmentScore

__all__ = [
    "Segment",
    "segment_plan",
    "CalibrationResult",
    "calibrate_segment",
    "QualityParameters",
    "VqmModel",
    "WORST_SCORE",
    "VqmTool",
    "VqmResult",
    "SegmentScore",
]
