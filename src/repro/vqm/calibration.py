"""Temporal (and level) calibration of received segments.

Before scoring, the tool must find where each reference segment
actually sits in the received stream: renderer stalls shift playback,
so the lag varies segment to segment. The paper drives this with an
"Alignment Uncertainty" parameter covering the 100-frame overlap.

We align on the luma-mean profile (scene structure survives coding and
freezes) refined by the temporal-information profile. Segments whose
best alignment is still a poor match — long periods of degraded
quality — fail calibration, and the tool assigns them the worst score,
exactly as the paper describes ("segments for which the temporal
calibration process did not succeed were assigned a default quality
index of 1").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default alignment search range, frames (the segment overlap).
DEFAULT_UNCERTAINTY = 100

#: Minimum combined correlation for a successful calibration.
DEFAULT_MIN_CORRELATION = 0.55


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of aligning one segment."""

    lag: int
    correlation: float
    succeeded: bool
    gain: float
    level_offset: float


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation, 0.0 when either side is constant."""
    if len(a) < 2 or len(a) != len(b):
        return 0.0
    a = a.astype(np.float64)
    da = a - a.mean()
    return _corr_against(da, (da * da).sum(), b)


def _corr_against(da: np.ndarray, da_sq_sum: float, b: np.ndarray) -> float:
    """Correlation of ``b`` against a pre-demeaned reference window.

    The alignment search correlates one fixed reference window against
    ~200 shifted received windows; the reference-side moments are loop
    invariants. Hoisting them performs the identical IEEE-754
    operations (once instead of per lag), so scores are unchanged.
    """
    b = b.astype(np.float64)
    db = b - b.mean()
    denom = np.sqrt(da_sq_sum * (db * db).sum())
    if denom < 1e-12:
        return 0.0
    return float((da * db).sum() / denom)


def calibrate_segment(
    ref_profile: np.ndarray,
    ref_ti: np.ndarray,
    rcv_profile: np.ndarray,
    rcv_ti: np.ndarray,
    nominal_start: int,
    length: int,
    uncertainty: int = DEFAULT_UNCERTAINTY,
    min_correlation: float = DEFAULT_MIN_CORRELATION,
) -> CalibrationResult:
    """Find the lag aligning a reference window into the received stream.

    Parameters
    ----------
    ref_profile / ref_ti:
        Full-clip reference feature streams (luma mean and TI).
    rcv_profile / rcv_ti:
        Full received streams (display timeline; may be longer than
        the reference).
    nominal_start:
        Where the segment starts on the reference timeline; lag 0
        means the received window starts at the same index.
    length:
        Segment length in frames.
    """
    ref_win_profile = ref_profile[nominal_start : nominal_start + length]
    ref_win_ti = ref_ti[nominal_start : nominal_start + length]
    n_rcv = len(rcv_profile)
    win = len(ref_win_profile)

    # Reference-side correlation moments are identical for every lag;
    # compute them once (see _corr_against).
    degenerate = win < 2
    if not degenerate:
        a_profile = ref_win_profile.astype(np.float64)
        da_profile = a_profile - a_profile.mean()
        sq_profile = (da_profile * da_profile).sum()
        a_ti = ref_win_ti.astype(np.float64)
        da_ti = a_ti - a_ti.mean()
        sq_ti = (da_ti * da_ti).sum()

    best_lag = 0
    best_score = -np.inf
    best_corr = 0.0
    for lag in range(-uncertainty, uncertainty + 1):
        start = nominal_start + lag
        if start < 0:
            continue
        end = start + win
        if end > n_rcv:
            break
        if degenerate:
            c_profile = 0.0
            c_ti = 0.0
        else:
            c_profile = _corr_against(
                da_profile, sq_profile, rcv_profile[start:end]
            )
            c_ti = _corr_against(da_ti, sq_ti, rcv_ti[start:end])
        combined = 0.75 * c_profile + 0.25 * c_ti
        if combined > best_score:
            best_score = combined
            best_lag = lag
            best_corr = combined

    if not np.isfinite(best_score):
        return CalibrationResult(
            lag=0, correlation=0.0, succeeded=False, gain=1.0, level_offset=0.0
        )

    # Gain/level estimation on the aligned luma profile (the paper's
    # calibration also removed systematic gain and offset errors).
    start = nominal_start + best_lag
    aligned = rcv_profile[start : start + len(ref_win_profile)]
    ref_std = ref_win_profile.std()
    gain = float(aligned.std() / ref_std) if ref_std > 1e-9 else 1.0
    level_offset = float(aligned.mean() - ref_win_profile.mean())

    return CalibrationResult(
        lag=best_lag,
        correlation=best_corr,
        succeeded=best_corr >= min_correlation,
        gain=gain,
        level_offset=level_offset,
    )
