"""Mapping VQM scores to subjective scales.

The paper's tool is calibrated against subjective panels whose results
are "frequently expressed in terms of the ITU-T mean opinion score
(MOS)". These helpers convert the 0 (perfect) .. 1 (worst) VQM scale
onto the 5 (excellent) .. 1 (bad) MOS scale and its standard verbal
categories, so results can be read the way the ITU recommendations
report them.

The mapping is the affine one used when objective scores are fitted to
the subjective range: MOS = 5 - 4 * score, clamped to [1, 5] (scores
may exceed 1.0 for extreme distortion).
"""

from __future__ import annotations

#: ITU-T five-grade impairment scale labels, by floor of the MOS.
MOS_LABELS = {
    5: "excellent",
    4: "good",
    3: "fair",
    2: "poor",
    1: "bad",
}


def vqm_to_mos(score: float) -> float:
    """Convert a VQM score (0 best .. 1 worst) to a MOS (5 best .. 1 worst)."""
    mos = 5.0 - 4.0 * score
    return max(1.0, min(5.0, mos))


def mos_to_vqm(mos: float) -> float:
    """Inverse of :func:`vqm_to_mos` (clamped to the valid range)."""
    if not 1.0 <= mos <= 5.0:
        raise ValueError(f"MOS must be in [1, 5], got {mos}")
    return (5.0 - mos) / 4.0


def mos_label(mos: float) -> str:
    """Verbal ITU category for a MOS value."""
    if not 1.0 <= mos <= 5.0:
        raise ValueError(f"MOS must be in [1, 5], got {mos}")
    # 4.5+ reads as excellent; each unit below steps down a grade.
    grade = min(5, int(mos + 0.5))
    return MOS_LABELS[max(1, grade)]


def describe(score: float) -> str:
    """One-line human verdict for a VQM clip score."""
    mos = vqm_to_mos(score)
    return f"VQM {score:.3f} -> MOS {mos:.2f} ({mos_label(mos)})"
