"""Quality parameters and the composite score model.

Follows the ANSI T1.801.03 reduced-reference recipe: compare received
and reference feature streams over an aligned window, derive
perception-motivated impairment parameters, and combine them into a
single score — 0 is perfect, 1 the worst the subjective scale covers
(the tool "may exceed 1.0 for extremely distorted video").

Parameter inventory (per scored window):

* ``si_loss`` / ``si_gain`` — lost vs added spatial detail (blur vs
  blockiness/noise), relative to reference edge energy.
* ``hv_diff`` — shift of edge-orientation energy (ANSI's HV feature).
* ``freeze_fraction`` — fraction of displayed frames that repeat the
  previous frame while the reference is moving: the dominant
  impairment under policing loss with repeat-last-frame concealment.
* ``ti_gain`` — excess motion energy (the jerky jump when playback
  skips frames after a freeze).
* ``color_diff`` — mean chroma displacement.
* ``level_diff`` — luma level error (dark screen, gain problems).

Combination: a weighted sum, with the freeze term raised to an
exponent < 1. Human sensitivity to freezes saturates: going from 0 to
300 ms of freezing in a 3-second window hurts far more than going from
1 s to 1.3 s. The concave exponent is what makes the clip-level score
highly *non-linear* in frame loss — the paper's central observation.

The constants below were fixed once, by calibrating four anchor points
against the paper's reported behaviour (perfect -> 0; ~1% frame loss
-> ~0.15; ~5% -> ~0.5; sustained loss -> ~1), and are never tuned per
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Score assigned to segments whose calibration failed.
WORST_SCORE = 1.0


@dataclass(frozen=True)
class QualityParameters:
    """Impairment parameters extracted from one aligned window."""

    si_loss: float
    si_gain: float
    hv_diff: float
    freeze_fraction: float
    ti_gain: float
    color_diff: float
    level_diff: float

    def as_dict(self) -> dict:
        """Plain-dict view (for reports and exports)."""
        return {
            "si_loss": self.si_loss,
            "si_gain": self.si_gain,
            "hv_diff": self.hv_diff,
            "freeze_fraction": self.freeze_fraction,
            "ti_gain": self.ti_gain,
            "color_diff": self.color_diff,
            "level_diff": self.level_diff,
        }


@dataclass(frozen=True)
class VqmModel:
    """Parameter-to-score combination with documented constants."""

    w_si_loss: float = 1.1
    w_si_gain: float = 0.6
    w_hv: float = 1.6
    w_freeze: float = 3.0
    freeze_exponent: float = 0.58
    w_ti_gain: float = 0.12
    w_color: float = 2.2
    w_level: float = 1.6
    clamp_max: float = 1.15  # scores may exceed 1.0 for extreme distortion

    def combine(self, params: QualityParameters) -> float:
        """Composite quality score for one window."""
        score = (
            self.w_si_loss * params.si_loss
            + self.w_si_gain * params.si_gain
            + self.w_hv * params.hv_diff
            + self.w_freeze * params.freeze_fraction**self.freeze_exponent
            + self.w_ti_gain * params.ti_gain
            + self.w_color * params.color_diff
            + self.w_level * params.level_diff
        )
        return float(np.clip(score, 0.0, self.clamp_max))

    # ------------------------------------------------------------------
    def extract_parameters(
        self,
        ref: dict,
        rcv: dict,
        clip_ti_scale: float,
    ) -> QualityParameters:
        """Parameters from aligned reference/received feature windows.

        ``ref`` and ``rcv`` are dicts of equal-length arrays with keys
        ``si``, ``hv``, ``ti``, ``y_mean``, ``u_mean``, ``v_mean``,
        plus ``rcv["frozen"]`` — boolean repeats mask on the display
        timeline. ``clip_ti_scale`` is the clip-level mean reference
        TI, so freezes in near-static scenes cost less than freezes
        mid-action.
        """
        si_ref = ref["si"]
        si_rcv = rcv["si"]
        si_scale = max(float(si_ref.mean()), 1e-6)
        si_loss = float(np.clip(si_ref - si_rcv, 0, None).mean()) / si_scale
        si_gain = float(np.clip(si_rcv - si_ref, 0, None).mean()) / si_scale

        hv_diff = float(np.abs(ref["hv"] - rcv["hv"]).mean())

        # Freezes: repeated display frames while the reference moves.
        moving = ref["ti"] > 0.15 * clip_ti_scale
        frozen = rcv["frozen"] & moving
        freeze_fraction = float(frozen.mean())

        ti_scale = max(clip_ti_scale, 1e-6)
        ti_gain = (
            float(np.clip(rcv["ti"] - ref["ti"], 0, None).mean()) / ti_scale
        )

        color_diff = float(
            (
                np.abs(ref["u_mean"] - rcv["u_mean"])
                + np.abs(ref["v_mean"] - rcv["v_mean"])
            ).mean()
        )
        level_diff = float(np.abs(ref["y_mean"] - rcv["y_mean"]).mean())

        return QualityParameters(
            si_loss=si_loss,
            si_gain=si_gain,
            hv_diff=hv_diff,
            freeze_fraction=freeze_fraction,
            ti_gain=ti_gain,
            color_diff=color_diff,
            level_diff=level_diff,
        )
