"""Segmentation of extended-duration clips (paper §3.1.3, Figure 3).

The original VQM tool was built for 5-10 s segments; the paper's clips
run 75-150 s. Their workaround, reproduced here: split the stored
video into segments of 300 frames (10 s) where "the first 100 frames
of each segment overlap with the last 100 frames of the segment
preceding it", i.e. a stride of 200 frames. The overlap gives the
temporal calibration room to search; the quality estimate then uses
the 100 frames following the alignment point.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Frames per segment (10 s at ~30 fps).
SEGMENT_FRAMES = 300

#: Overlap between consecutive segments.
SEGMENT_OVERLAP = 100

#: Frames actually scored, following the alignment point.
SCORING_FRAMES = 100


@dataclass(frozen=True)
class Segment:
    """One 300-frame analysis window on the reference timeline."""

    index: int
    start: int  # first reference frame of the segment
    length: int

    @property
    def end(self) -> int:
        """One past the last reference frame."""
        return self.start + self.length

    @property
    def scoring_start(self) -> int:
        """Nominal first frame of the scored window (pre-alignment)."""
        return self.start + SEGMENT_OVERLAP

    def __post_init__(self) -> None:
        if self.start < 0 or self.length <= 0:
            raise ValueError("segment must have positive extent")


def segment_plan(
    n_frames: int,
    segment_frames: int = SEGMENT_FRAMES,
    overlap: int = SEGMENT_OVERLAP,
) -> list[Segment]:
    """Cut ``n_frames`` into overlapping segments per Figure 3.

    Segments start every ``segment_frames - overlap`` frames. A final
    ragged piece shorter than the scoring window plus overlap is merged
    into the previous segment's territory (dropped), matching the
    tool's behaviour of only scoring full windows. Clips shorter than
    one segment yield a single truncated segment.
    """
    if n_frames <= 0:
        raise ValueError("clip must contain frames")
    if overlap >= segment_frames:
        raise ValueError("overlap must be smaller than the segment")
    stride = segment_frames - overlap
    segments: list[Segment] = []
    index = 0
    start = 0
    while start < n_frames:
        remaining = n_frames - start
        if segments and remaining < overlap + SCORING_FRAMES:
            break  # ragged tail too short to score
        length = min(segment_frames, remaining)
        segments.append(Segment(index=index, start=start, length=length))
        index += 1
        start += stride
    return segments
