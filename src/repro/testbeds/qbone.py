"""The QBone wide-area testbed (paper Figure 5).

Path: video server at the remote campus (pre-marking EF) → campus LAN
(with jitter from local contention) → border Cisco router running CAR
(token-bucket policer, drop on exceed) → the Abilene backbone —
"lightly loaded, so that except at boundary nodes, the APS service was
implemented simply by means of over-provisioning" — modelled as a
chain of fast links with priority queues and optional light cross
traffic → local campus → client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.diffserv.policer import Policer, PolicerAction
from repro.diffserv.scheduler import PriorityScheduler
from repro.diffserv.shaper import Shaper
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.tracer import FlowTracer
from repro.testbeds.crosstraffic import PoissonSource
from repro.testbeds.jitter import JitterElement
from repro.units import mbps


@dataclass
class QBoneTestbedConfig:
    """Knobs of the wide-area path."""

    token_rate_bps: float = mbps(1.9)
    bucket_depth_bytes: float = 3000.0
    policer_action: PolicerAction = PolicerAction.DROP
    campus_lan_rate_bps: float = mbps(100)
    backbone_rate_bps: float = mbps(155)
    backbone_hops: int = 3
    backbone_hop_delay_s: float = 0.008
    jitter_mean_s: float = 0.0004
    jitter_max_s: float = 0.002
    cross_traffic_rate_bps: float = 0.0  # per backbone hop, best effort
    use_shaper: bool = False
    shaper_rate_bps: Optional[float] = None  # defaults to token rate
    shaper_depth_bytes: float = 3000.0
    flow_id: str = "video"


@dataclass
class QBoneTestbed:
    """Assembled QBone path.

    ``ingress`` is where the server injects packets; ``client_host``
    is where the client application attaches. ``policer`` and the
    tracers are exposed for the experiment harness.
    """

    engine: Engine
    config: QBoneTestbedConfig
    ingress: object = field(init=False)
    client_host: Host = field(init=False)
    policer: Policer = field(init=False)
    server_tap: FlowTracer = field(init=False)
    client_tap: FlowTracer = field(init=False)
    shaper: Optional[Shaper] = field(init=False, default=None)
    cross_sources: list = field(default_factory=list)

    def __post_init__(self) -> None:
        engine = self.engine
        cfg = self.config

        self.client_host = Host("client")
        self.client_tap = FlowTracer(
            engine, sink=self.client_host, flow_id=cfg.flow_id, name="client-tap"
        )

        # Backbone chain, built back to front.
        next_sink = self.client_tap
        for hop in range(cfg.backbone_hops, 0, -1):
            link = Link(
                engine,
                rate_bps=cfg.backbone_rate_bps,
                sink=next_sink,
                queue=PriorityScheduler(),
                propagation_delay=cfg.backbone_hop_delay_s,
                name=f"abilene-{hop}",
            )
            if cfg.cross_traffic_rate_bps > 0:
                source = PoissonSource(
                    engine,
                    link,
                    rate_bps=cfg.cross_traffic_rate_bps,
                    flow_id=f"cross-hop{hop}",
                )
                source.start()
                self.cross_sources.append(source)
            next_sink = link

        # Border router with the CAR policer at its ingress.
        border = Router("border")
        self.policer = Policer(
            engine,
            rate_bps=cfg.token_rate_bps,
            depth_bytes=cfg.bucket_depth_bytes,
            action=cfg.policer_action,
        )
        border.add_ingress_stage(self.policer)
        border.add_route(cfg.flow_id, next_sink)
        border.set_default_route(next_sink)
        self.border_router = border

        # Optional sending-side shaper smoothing the flow into the
        # policer (paper §: shaping trades policer drops for delay).
        first_hop: object = border
        if cfg.use_shaper:
            self.shaper = Shaper(
                engine,
                rate_bps=cfg.shaper_rate_bps or cfg.token_rate_bps,
                depth_bytes=cfg.shaper_depth_bytes,
                sink=border,
                name="edge-shaper",
            )
            first_hop = self.shaper

        # Remote campus: LAN then jitter, into the border router.
        jitter = JitterElement(
            engine,
            sink=first_hop,
            base_delay=0.0005,
            mean_jitter=cfg.jitter_mean_s,
            max_jitter=cfg.jitter_max_s,
        )
        campus_lan = Link(
            engine,
            rate_bps=cfg.campus_lan_rate_bps,
            sink=jitter,
            name="remote-campus-lan",
        )
        self.server_tap = FlowTracer(
            engine, sink=campus_lan, flow_id=cfg.flow_id, name="server-tap"
        )
        self.ingress = self.server_tap
