"""The local DiffServ testbed (paper Figure 4, Table 1).

Path: WMT server → 10 Mbps campus Ethernet → optional Linux traffic
shaper → router 1 (classifier + EF policer, priority queues) →
HSSI frame-relay hop to router 2 → V.35 frame-relay hop (the ~2 Mbps
E1-class bottleneck, "the main bandwidth bottleneck of the system") to
router 3 → client Ethernet → client.

Routers 2 and 3 only classify on the EF codepoint and serve it from
the high-priority queue; all policing happens at router 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.diffserv.policer import Policer, PolicerAction
from repro.diffserv.scheduler import PriorityScheduler
from repro.diffserv.shaper import Shaper
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.tracer import FlowTracer
from repro.testbeds.crosstraffic import OnOffSource
from repro.units import mbps


@dataclass
class LocalTestbedConfig:
    """Knobs of the local path."""

    token_rate_bps: float = mbps(1.2)
    bucket_depth_bytes: float = 3000.0
    policer_action: PolicerAction = PolicerAction.DROP
    use_shaper: bool = False
    shaper_rate_bps: Optional[float] = None  # defaults to token rate
    shaper_depth_bytes: float = 3000.0
    lan_rate_bps: float = mbps(10)
    hssi_rate_bps: float = mbps(2.0)  # CIR per Table 1
    v35_rate_bps: float = mbps(2.0)  # CIR per Table 1; E1 ceiling
    hop_delay_s: float = 0.001
    cross_traffic_peak_bps: float = 0.0  # on/off best-effort at router 2
    flow_id: str = "video"


@dataclass
class LocalTestbed:
    """Assembled local path (see module docstring)."""

    engine: Engine
    config: LocalTestbedConfig
    ingress: object = field(init=False)
    client_host: Host = field(init=False)
    policer: Policer = field(init=False)
    shaper: Optional[Shaper] = field(init=False, default=None)
    server_tap: FlowTracer = field(init=False)
    client_tap: FlowTracer = field(init=False)
    cross_sources: list = field(default_factory=list)

    def __post_init__(self) -> None:
        engine = self.engine
        cfg = self.config

        self.client_host = Host("client")
        self.client_tap = FlowTracer(
            engine, sink=self.client_host, flow_id=cfg.flow_id, name="client-tap"
        )
        client_lan = Link(
            engine,
            rate_bps=cfg.lan_rate_bps,
            sink=self.client_tap,
            name="client-lan",
        )

        # Router 3: classify EF -> priority queue on the client LAN.
        router3 = Router("router3")
        router3.set_default_route(client_lan)

        v35 = Link(
            engine,
            rate_bps=cfg.v35_rate_bps,
            sink=router3,
            queue=PriorityScheduler(),
            propagation_delay=cfg.hop_delay_s,
            name="v35",
        )

        # Router 2: EF prioritization onto the V.35 bottleneck.
        router2 = Router("router2")
        router2.set_default_route(v35)
        if cfg.cross_traffic_peak_bps > 0:
            source = OnOffSource(
                engine,
                v35,
                peak_rate_bps=cfg.cross_traffic_peak_bps,
                flow_id="cross-local",
            )
            source.start()
            self.cross_sources.append(source)

        hssi = Link(
            engine,
            rate_bps=cfg.hssi_rate_bps,
            sink=router2,
            queue=PriorityScheduler(),
            propagation_delay=cfg.hop_delay_s,
            name="hssi",
        )

        # Router 1: the policy edge — classify the video flow, police
        # it, mark conformant packets EF, and drop the rest.
        router1 = Router("router1")
        self.policer = Policer(
            engine,
            rate_bps=cfg.token_rate_bps,
            depth_bytes=cfg.bucket_depth_bytes,
            action=cfg.policer_action,
        )
        router1.add_ingress_stage(self._police_video_only)
        router1.set_default_route(hssi)
        self.router1 = router1

        first_hop: object = router1
        if cfg.use_shaper:
            shaper_rate = cfg.shaper_rate_bps or cfg.token_rate_bps
            self.shaper = Shaper(
                engine,
                rate_bps=shaper_rate,
                depth_bytes=cfg.shaper_depth_bytes,
                sink=router1,
                name="linux-shaper",
            )
            first_hop = self.shaper

        server_lan = Link(
            engine,
            rate_bps=cfg.lan_rate_bps,
            sink=first_hop,
            name="server-lan",
        )
        self.server_tap = FlowTracer(
            engine, sink=server_lan, flow_id=cfg.flow_id, name="server-tap"
        )
        self.ingress = self.server_tap

    def _police_video_only(self, packet):
        """Router 1 ingress: police the video flow, pass the rest."""
        if packet.flow_id == self.config.flow_id:
            return self.policer(packet)
        return packet
