"""Order-preserving jitter element.

Models delay variation accumulated *before* the policing point —
campus-LAN queueing at the paper's remote site. The paper flags this
explicitly: "interactions with cross traffic prior to reaching the
router where policing actions are performed can impact the number of
frames that are found non-conformant" (the ATM cell-delay-variation
problem). Jitter clumps packets together, which costs extra tokens at
a small bucket.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink


class JitterElement:
    """Adds random, order-preserving delay to every packet.

    Per-packet delay is ``base_delay + Exp(mean_jitter)``, truncated at
    ``max_jitter``; release times are made monotone so packets never
    reorder (later packets clump behind delayed earlier ones, exactly
    the effect we want to model).
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        base_delay: float = 0.001,
        mean_jitter: float = 0.0004,
        max_jitter: float = 0.002,
        burst_probability: float = 0.004,
        burst_delay_range: tuple = (0.001, 0.004),
        rng_stream: str = "jitter",
        rng=None,
        delays=None,
    ):
        if base_delay < 0 or mean_jitter < 0 or max_jitter < 0:
            raise ValueError("delays cannot be negative")
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst probability must be in [0,1]")
        self.engine = engine
        self._sink = sink
        self.base_delay = base_delay
        self.mean_jitter = mean_jitter
        self.max_jitter = max_jitter
        self.burst_probability = burst_probability
        self.burst_delay_range = burst_delay_range
        self.rng_stream = rng_stream
        # Injected generator (multi-flow aggregates give each flow its
        # own, derived from the flow seed); None keeps the historical
        # engine-owned per-stream generator.
        self._rng = rng
        # Precomputed per-packet total delay sequence (base + jitter,
        # indexed by arrival order). When set, no RNG is consulted at
        # receive time — the aggregate lanes draw each flow's whole
        # delay vector up front so the vectorized fast lane can replay
        # it with array arithmetic, bit-identically.
        self._delays = delays
        self._last_release = 0.0
        self.delayed_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("jitter element not connected")
        if self._delays is not None:
            # Precomputed mode: delays[k] is the *total* delay (base
            # included) of the k-th packet through this element.
            delay = float(self._delays[self.delayed_packets])
            release = max(self.engine.now + delay, self._last_release)
            self._last_release = release
            self.delayed_packets += 1
            sink = self._sink
            self.engine.schedule_at(release, lambda p=packet: sink.receive(p))
            return
        rng = self._rng if self._rng is not None else self.engine.rng(self.rng_stream)
        jitter = 0.0
        if self.mean_jitter > 0:
            jitter = min(
                float(rng.exponential(self.mean_jitter)), self.max_jitter
            )
        # Occasional contention bursts: someone else's traffic stalls
        # the campus queue for a few milliseconds, clumping our packets.
        if self.burst_probability > 0 and rng.random() < self.burst_probability:
            jitter += float(rng.uniform(*self.burst_delay_range))
        release = max(
            self.engine.now + self.base_delay + jitter, self._last_release
        )
        self._last_release = release
        self.delayed_packets += 1
        sink = self._sink
        self.engine.schedule_at(release, lambda p=packet: sink.receive(p))
