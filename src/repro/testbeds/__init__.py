"""Network testbed topologies.

`local` rebuilds the paper's Figure 4 testbed (Linux shaper, three
DiffServ routers, a ~2 Mbps V.35 bottleneck); `qbone` rebuilds the
Figure 5 wide-area path (remote campus, CAR-policed border router,
lightly-loaded backbone); `crosstraffic` provides the interfering
sources.
"""

from repro.testbeds.crosstraffic import CbrSource, PoissonSource, OnOffSource
from repro.testbeds.jitter import JitterElement
from repro.testbeds.local import LocalTestbed, LocalTestbedConfig
from repro.testbeds.qbone import QBoneTestbed, QBoneTestbedConfig
from repro.testbeds.af_bottleneck import AfBottleneck, AfBottleneckConfig

__all__ = [
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "JitterElement",
    "LocalTestbed",
    "LocalTestbedConfig",
    "QBoneTestbed",
    "QBoneTestbedConfig",
    "AfBottleneck",
    "AfBottleneckConfig",
]
