"""Generic path impairment elements (failure injection).

The paper's losses all come from one mechanism — the edge policer.
These elements let experiments inject *other* loss/delay processes at
any point of a topology, which is how the ablation benches separate
"how much loss" from "what loss pattern":

* :class:`RandomLossElement` — iid Bernoulli packet loss;
* :class:`GilbertLossElement` — two-state (Gilbert-Elliott) bursty
  loss with configurable burstiness at the same average rate;
* :class:`DelaySpikeElement` — occasional multi-millisecond delay
  spikes (order-preserving), a heavier-tailed cousin of
  :class:`~repro.testbeds.jitter.JitterElement`;
* :class:`LinkOutageElement` — on/off link flapping: total loss during
  deterministic (or RNG-drawn) outage windows, which is what recovery
  machinery has to survive — random loss thins a stream, an outage
  black-holes it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink


class RandomLossElement:
    """Drops each packet independently with probability ``loss_rate``."""

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        loss_rate: float = 0.01,
        rng_stream: str = "random-loss",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.engine = engine
        self._sink = sink
        self.loss_rate = loss_rate
        self.rng_stream = rng_stream
        self.dropped_packets = 0
        self.passed_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("loss element not connected")
        if self.engine.rng(self.rng_stream).random() < self.loss_rate:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        self._sink.receive(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets this element has dropped so far."""
        total = self.dropped_packets + self.passed_packets
        return self.dropped_packets / total if total else 0.0


class GilbertLossElement:
    """Two-state bursty loss (Gilbert-Elliott, loss only in BAD state).

    Parameters
    ----------
    mean_loss_rate:
        Long-run fraction of packets dropped.
    mean_burst_packets:
        Average run length of consecutive drops. 1.0 degenerates to
        iid loss; larger values cluster the same loss budget into
        bursts.
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        mean_loss_rate: float = 0.01,
        mean_burst_packets: float = 5.0,
        rng_stream: str = "gilbert-loss",
    ):
        if not 0.0 <= mean_loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if mean_burst_packets < 1.0:
            raise ValueError("mean burst length must be >= 1 packet")
        self.engine = engine
        self._sink = sink
        self.rng_stream = rng_stream
        # BAD state drops every packet. Exit probability fixes the
        # burst length; entry probability then fixes the average rate:
        # stationary P(bad) = p_enter / (p_enter + p_exit).
        self.p_exit = 1.0 / mean_burst_packets
        if mean_loss_rate > 0:
            self.p_enter = (
                mean_loss_rate * self.p_exit / (1.0 - mean_loss_rate)
            )
        else:
            self.p_enter = 0.0
        self._bad = False
        self.dropped_packets = 0
        self.passed_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("loss element not connected")
        rng = self.engine.rng(self.rng_stream)
        if self._bad:
            if rng.random() < self.p_exit:
                self._bad = False
        elif rng.random() < self.p_enter:
            self._bad = True
        if self._bad:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        self._sink.receive(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets this element has dropped so far."""
        total = self.dropped_packets + self.passed_packets
        return self.dropped_packets / total if total else 0.0


class DelaySpikeElement:
    """Occasional large delay spikes, order preserved.

    With probability ``spike_probability`` a packet (and, through the
    ordering constraint, everything behind it) is held for
    ``spike_delay_s`` — a route flap or burst of higher-priority
    traffic.
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        spike_probability: float = 0.001,
        spike_delay_s: float = 0.05,
        rng_stream: str = "delay-spike",
    ):
        if not 0.0 <= spike_probability <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")
        if spike_delay_s < 0:
            raise ValueError("spike delay cannot be negative")
        self.engine = engine
        self._sink = sink
        self.spike_probability = spike_probability
        self.spike_delay_s = spike_delay_s
        self.rng_stream = rng_stream
        self._last_release = 0.0
        self.spikes = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("delay element not connected")
        delay = 0.0
        if self.engine.rng(self.rng_stream).random() < self.spike_probability:
            delay = self.spike_delay_s
            self.spikes += 1
        release = max(self.engine.now + delay, self._last_release)
        self._last_release = release
        sink = self._sink
        self.engine.schedule_at(release, lambda p=packet: sink.receive(p))


class LinkOutageElement:
    """A link that flaps: up for ``up_s``, then down for ``down_s``.

    Packets arriving while the link is down are dropped; packets
    arriving while it is up pass through untouched (no added delay, so
    arrival order is preserved). Windows are half-open: a packet
    arriving exactly when an outage begins is lost, one arriving
    exactly when it ends gets through.

    Parameters
    ----------
    up_s / down_s:
        Durations of the up and down phases. With
        ``random_outages=False`` (default) the flap schedule is exactly
        periodic — boundary-timing tests rely on this.
    start_up_s:
        Length of the *first* up phase (defaults to ``up_s``), so an
        outage can be placed anywhere relative to stream start.
    random_outages:
        When True, each phase duration is drawn from an exponential
        distribution with the configured mean, from the named engine
        RNG stream (deterministic per seed).
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        up_s: float = 5.0,
        down_s: float = 1.0,
        start_up_s: Optional[float] = None,
        random_outages: bool = False,
        rng_stream: str = "link-outage",
    ):
        if up_s <= 0 or down_s <= 0:
            raise ValueError("up_s and down_s must be positive")
        if start_up_s is not None and start_up_s < 0:
            raise ValueError("start_up_s cannot be negative")
        self.engine = engine
        self._sink = sink
        self.up_s = up_s
        self.down_s = down_s
        self.random_outages = random_outages
        self.rng_stream = rng_stream
        self._down = False
        # Time at which the current phase ends. The state machine is
        # lazy: it only advances when a packet arrives, so an idle
        # element schedules no events at all.
        self._phase_end = start_up_s if start_up_s is not None else up_s
        self.dropped_packets = 0
        self.passed_packets = 0
        self.outages = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def _phase_duration(self, down: bool) -> float:
        mean = self.down_s if down else self.up_s
        if not self.random_outages:
            return mean
        return max(
            float(self.engine.rng(self.rng_stream).exponential(mean)), 1e-9
        )

    def _advance(self, now: float) -> None:
        while now >= self._phase_end:
            self._down = not self._down
            if self._down:
                self.outages += 1
            self._phase_end += self._phase_duration(self._down)

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("outage element not connected")
        self._advance(self.engine.now)
        if self._down:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        self._sink.receive(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets this element has dropped so far."""
        total = self.dropped_packets + self.passed_packets
        return self.dropped_packets / total if total else 0.0
