"""Generic path impairment elements (failure injection).

The paper's losses all come from one mechanism — the edge policer.
These elements let experiments inject *other* loss/delay processes at
any point of a topology, which is how the ablation benches separate
"how much loss" from "what loss pattern":

* :class:`RandomLossElement` — iid Bernoulli packet loss;
* :class:`GilbertLossElement` — two-state (Gilbert-Elliott) bursty
  loss with configurable burstiness at the same average rate;
* :class:`DelaySpikeElement` — occasional multi-millisecond delay
  spikes (order-preserving), a heavier-tailed cousin of
  :class:`~repro.testbeds.jitter.JitterElement`.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink


class RandomLossElement:
    """Drops each packet independently with probability ``loss_rate``."""

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        loss_rate: float = 0.01,
        rng_stream: str = "random-loss",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.engine = engine
        self._sink = sink
        self.loss_rate = loss_rate
        self.rng_stream = rng_stream
        self.dropped_packets = 0
        self.passed_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("loss element not connected")
        if self.engine.rng(self.rng_stream).random() < self.loss_rate:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        self._sink.receive(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets this element has dropped so far."""
        total = self.dropped_packets + self.passed_packets
        return self.dropped_packets / total if total else 0.0


class GilbertLossElement:
    """Two-state bursty loss (Gilbert-Elliott, loss only in BAD state).

    Parameters
    ----------
    mean_loss_rate:
        Long-run fraction of packets dropped.
    mean_burst_packets:
        Average run length of consecutive drops. 1.0 degenerates to
        iid loss; larger values cluster the same loss budget into
        bursts.
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        mean_loss_rate: float = 0.01,
        mean_burst_packets: float = 5.0,
        rng_stream: str = "gilbert-loss",
    ):
        if not 0.0 <= mean_loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if mean_burst_packets < 1.0:
            raise ValueError("mean burst length must be >= 1 packet")
        self.engine = engine
        self._sink = sink
        self.rng_stream = rng_stream
        # BAD state drops every packet. Exit probability fixes the
        # burst length; entry probability then fixes the average rate:
        # stationary P(bad) = p_enter / (p_enter + p_exit).
        self.p_exit = 1.0 / mean_burst_packets
        if mean_loss_rate > 0:
            self.p_enter = (
                mean_loss_rate * self.p_exit / (1.0 - mean_loss_rate)
            )
        else:
            self.p_enter = 0.0
        self._bad = False
        self.dropped_packets = 0
        self.passed_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("loss element not connected")
        rng = self.engine.rng(self.rng_stream)
        if self._bad:
            if rng.random() < self.p_exit:
                self._bad = False
        elif rng.random() < self.p_enter:
            self._bad = True
        if self._bad:
            self.dropped_packets += 1
            return
        self.passed_packets += 1
        self._sink.receive(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets this element has dropped so far."""
        total = self.dropped_packets + self.passed_packets
        return self.dropped_packets / total if total else 0.0


class DelaySpikeElement:
    """Occasional large delay spikes, order preserved.

    With probability ``spike_probability`` a packet (and, through the
    ordering constraint, everything behind it) is held for
    ``spike_delay_s`` — a route flap or burst of higher-priority
    traffic.
    """

    def __init__(
        self,
        engine: Engine,
        sink: Optional[PacketSink] = None,
        spike_probability: float = 0.001,
        spike_delay_s: float = 0.05,
        rng_stream: str = "delay-spike",
    ):
        if not 0.0 <= spike_probability <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")
        if spike_delay_s < 0:
            raise ValueError("spike delay cannot be negative")
        self.engine = engine
        self._sink = sink
        self.spike_probability = spike_probability
        self.spike_delay_s = spike_delay_s
        self.rng_stream = rng_stream
        self._last_release = 0.0
        self.spikes = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if self._sink is None:
            raise RuntimeError("delay element not connected")
        delay = 0.0
        if self.engine.rng(self.rng_stream).random() < self.spike_probability:
            delay = self.spike_delay_s
            self.spikes += 1
        release = max(self.engine.now + delay, self._last_release)
        self._last_release = release
        sink = self._sink
        self.engine.schedule_at(release, lambda p=packet: sink.receive(p))
