"""AF PHB testbed: a color-marked flow through a WRED bottleneck.

The paper ran "some preliminary experiments ... using the AF PHB that
are not reported ..., as the results were heavily dependent on the
level of cross traffic and its impact on the performance given to
marked packets". This topology lets the reproduction demonstrate
exactly that dependence: the video flow is srTCM-colored at the edge
and shares a WRED bottleneck with best-effort cross traffic; its
yellow/red packets live or die with the congestion level.

Path: server → campus LAN → edge router (AF marker) → bottleneck link
with a WRED queue (+ cross traffic) → client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diffserv.af_marker import AfMarker
from repro.diffserv.dscp import DSCP
from repro.diffserv.marker import Marker
from repro.diffserv.red import WredQueue
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.tracer import FlowTracer
from repro.testbeds.crosstraffic import PoissonSource
from repro.units import mbps


@dataclass
class AfBottleneckConfig:
    """Knobs of the AF path."""

    committed_rate_bps: float = mbps(1.7)  # srTCM CIR for the video flow
    cbs_bytes: float = 3000.0
    ebs_bytes: float = 9000.0
    bottleneck_rate_bps: float = mbps(6.0)
    cross_traffic_rate_bps: float = 0.0
    queue_packets: int = 120
    hop_delay_s: float = 0.004
    flow_id: str = "video"


@dataclass
class AfBottleneck:
    """Assembled AF path (same surface as the EF testbeds)."""

    engine: Engine
    config: AfBottleneckConfig
    ingress: object = field(init=False)
    client_host: Host = field(init=False)
    policer: AfMarker = field(init=False)  # stats-compatible marker
    server_tap: FlowTracer = field(init=False)
    client_tap: FlowTracer = field(init=False)
    wred: WredQueue = field(init=False)
    cross_sources: list = field(default_factory=list)

    def __post_init__(self) -> None:
        engine = self.engine
        cfg = self.config

        self.client_host = Host("client")
        self.client_tap = FlowTracer(
            engine, sink=self.client_host, flow_id=cfg.flow_id, name="client-tap"
        )

        self.wred = WredQueue(
            max_packets=cfg.queue_packets, rng=engine.rng("wred")
        )
        bottleneck = Link(
            engine,
            rate_bps=cfg.bottleneck_rate_bps,
            sink=self.client_tap,
            queue=self.wred,
            propagation_delay=cfg.hop_delay_s,
            name="af-bottleneck",
        )
        if cfg.cross_traffic_rate_bps > 0:
            # Cross traffic is another AF customer: committed (AF11)
            # marking, so it competes with the video flow inside the
            # same WRED class rather than absorbing every drop as best
            # effort would.
            cross_marker = Marker(DSCP.AF11)
            cross_marker.connect(bottleneck)
            source = PoissonSource(
                engine,
                cross_marker,
                rate_bps=cfg.cross_traffic_rate_bps,
                flow_id="cross-af",
                packet_size=1000,
            )
            source.start()
            self.cross_sources.append(source)

        edge = Router("af-edge")
        self.policer = AfMarker(
            engine,
            cir_bps=cfg.committed_rate_bps,
            cbs_bytes=cfg.cbs_bytes,
            ebs_bytes=cfg.ebs_bytes,
        )
        edge.add_ingress_stage(self._mark_video_only)
        edge.set_default_route(bottleneck)

        campus_lan = Link(
            engine, rate_bps=mbps(100), sink=edge, name="af-campus-lan"
        )
        self.server_tap = FlowTracer(
            engine, sink=campus_lan, flow_id=cfg.flow_id, name="server-tap"
        )
        self.ingress = self.server_tap

    def _mark_video_only(self, packet):
        if packet.flow_id == self.config.flow_id:
            return self.policer(packet)
        return packet
