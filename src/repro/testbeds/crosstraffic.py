"""Interfering traffic sources.

The paper mostly kept interference off ("dedicated video server,
absence of local interfering traffic") but ran a few experiments with
cross traffic and found "only minor variations ... primarily a
reflection of how the different routers implemented the prioritization
of EF traffic". These sources let the ablation benches reproduce that:
best-effort packets share links with the EF-marked video and lose
every contention at the priority scheduler.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink


class _SourceBase:
    """Common start/stop plumbing for the generators."""

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        flow_id: str,
        packet_size: int,
    ):
        if packet_size <= 0:
            raise ValueError("packet size must be positive")
        self.engine = engine
        self.sink = sink
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.packets_sent = 0
        self._running = False
        self._stop_at: Optional[float] = None

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin emitting packets at time ``at`` (stop at ``stop_at``)."""
        self._running = True
        self._stop_at = stop_at
        self.engine.schedule_at(at, self._tick)

    def stop(self) -> None:
        """Stop emitting packets."""
        self._running = False

    def _emit(self) -> None:
        self.packets_sent += 1
        self.sink.receive(
            Packet(
                packet_id=self.engine.next_packet_id(),
                flow_id=self.flow_id,
                size=self.packet_size,
                created_at=self.engine.now,
            )
        )

    def _should_continue(self) -> bool:
        if not self._running:
            return False
        if self._stop_at is not None and self.engine.now >= self._stop_at:
            return False
        return True

    def _tick(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class CbrSource(_SourceBase):
    """Constant-bit-rate interferer."""

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        rate_bps: float,
        flow_id: str = "cross-cbr",
        packet_size: int = 1000,
    ):
        super().__init__(engine, sink, flow_id, packet_size)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.interval = packet_size * 8.0 / rate_bps

    def _tick(self) -> None:
        if not self._should_continue():
            return
        self._emit()
        self.engine.schedule(self.interval, self._tick)


class PoissonSource(_SourceBase):
    """Poisson arrivals at a target average rate."""

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        rate_bps: float,
        flow_id: str = "cross-poisson",
        packet_size: int = 1000,
    ):
        super().__init__(engine, sink, flow_id, packet_size)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.mean_interval = packet_size * 8.0 / rate_bps

    def _tick(self) -> None:
        if not self._should_continue():
            return
        self._emit()
        gap = self.engine.rng(self.flow_id).exponential(self.mean_interval)
        self.engine.schedule(gap, self._tick)


class OnOffSource(_SourceBase):
    """Bursty on/off interferer (exponential on/off periods).

    During ON periods it transmits CBR at ``peak_rate_bps``; the duty
    cycle sets the average load.
    """

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        peak_rate_bps: float,
        mean_on_s: float = 0.2,
        mean_off_s: float = 0.8,
        flow_id: str = "cross-onoff",
        packet_size: int = 1000,
    ):
        super().__init__(engine, sink, flow_id, packet_size)
        if peak_rate_bps <= 0:
            raise ValueError("peak rate must be positive")
        self.interval = packet_size * 8.0 / peak_rate_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self._on_until = 0.0

    def _tick(self) -> None:
        if not self._should_continue():
            return
        rng = self.engine.rng(self.flow_id)
        if self.engine.now >= self._on_until:
            # Start of a new cycle: idle, then a burst window.
            off = rng.exponential(self.mean_off_s)
            on = rng.exponential(self.mean_on_s)
            self._on_until = self.engine.now + off + on
            self.engine.schedule(off, self._tick)
            return
        self._emit()
        self.engine.schedule(self.interval, self._tick)
