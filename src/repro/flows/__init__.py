"""Multi-flow aggregates and QoE-aware admission control.

The paper polices *one* video flow against its negotiated token
bucket; real DiffServ deployments police an EF *aggregate* — many
concurrent sessions sharing one profile at the ingress. This package
scales the reproduction from one flow to N:

* :mod:`repro.flows.aggregate` — :class:`AggregateSpec` (N member
  flows sharing one policer), the engine fan-in lane (bit-checked
  oracle), and the shared per-flow summary rollup.
* :mod:`repro.flows.multipath` — the vectorized fast lane: per-flow
  schedules merged into one interleaved arrival stream scanned by a
  single speculative token-bucket pass; bit-identical to the engine
  lane and tractable at 100–1000 flows.
* :mod:`repro.flows.measure` — windowed aggregate-rate measurement
  from the same arrival arrays.
* :mod:`repro.flows.admission` — session-schedule replay comparing
  QoE-floor admission against a naive bandwidth budget.
"""

from repro.flows.aggregate import (
    AggregateSpec,
    AggregateSummary,
    contended_flow_specs,
    derive_flow_seed,
    flow_jitter_delays,
    rollup_summaries,
    run_aggregate,
    run_engine_aggregate,
)
from repro.flows.admission import (
    AdmissionController,
    AdmissionFrontier,
    BandwidthBudgetPolicy,
    QoeFloorPolicy,
    SessionEvent,
    admission_frontier,
)
from repro.flows.measure import RateMeasurement, measure_aggregate, measure_rate
from repro.flows.multipath import (
    FLOWPATH_ENV,
    FlowpathUnsupported,
    qualifies_for_flowpath,
    run_multipath,
    use_flowpath,
)

__all__ = [
    "AggregateSpec",
    "AggregateSummary",
    "contended_flow_specs",
    "derive_flow_seed",
    "flow_jitter_delays",
    "rollup_summaries",
    "run_aggregate",
    "run_engine_aggregate",
    "FLOWPATH_ENV",
    "FlowpathUnsupported",
    "qualifies_for_flowpath",
    "run_multipath",
    "use_flowpath",
    "AdmissionController",
    "AdmissionFrontier",
    "BandwidthBudgetPolicy",
    "QoeFloorPolicy",
    "SessionEvent",
    "admission_frontier",
    "RateMeasurement",
    "measure_aggregate",
    "measure_rate",
]
