"""QoE-aware admission control over multi-flow aggregates.

The paper provisioned *one* flow; an operator admits *many* into one
EF profile and must decide when to stop. The naive rule — admit while
the sum of nominal encoding rates fits the token rate — ignores
per-packet wire overhead (28 bytes of UDP/IP per MTU payload) and the
burstiness the bucket actually polices, so it happily over-admits.
This module implements the alternative the reproduction makes cheap:
*probe* the candidate aggregate (through the ordinary runner/cache
machinery, like the provisioning recommender) and admit only while
every admitted flow's QoE stays above a floor.

Two policies, one controller, one frontier:

* :class:`QoeFloorPolicy` — simulate the would-be aggregate; admit iff
  the *worst* member flow's VQM score and frame loss meet the floor.
* :class:`BandwidthBudgetPolicy` — the naive yardstick; admit iff
  nominal demand fits the budget.
* :class:`AdmissionController` — replays a session schedule (arrivals
  and departures) through a policy, producing one decision per
  arrival.
* :func:`admission_frontier` — the summary figure: admitted flows vs
  aggregate and worst-flow QoE, with both policies' cutoffs marked.

Probe aggregates start every active flow at t=0 — the conservative
instantaneous worst case (all admitted flows bursting from the same
instant), and also what keeps probes cacheable: the probe for "these
K flows" is one spec fingerprint, independent of arrival history.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.faults import FailureRecord
from repro.core.runner import Runner, SerialRunner
from repro.flows.aggregate import AggregateSpec, AggregateSummary
from repro.flows.measure import DEFAULT_WINDOW_S, measure_aggregate
from repro.video.clips import encode_clip

#: Default QoE floor: clip-level VQM score (0 best, 1 worst) each
#: admitted flow must stay within...
DEFAULT_FLOOR_SCORE = 0.25
#: ...and the frame-loss fraction it must stay within.
DEFAULT_FLOOR_LOSS = 0.05


def nominal_rate_bps(flow) -> float:
    """The rate a naive admission rule books for one flow.

    The flow's advertised average encoding rate — what a reservation
    request would carry. Deliberately ignores wire overhead and
    burstiness; that blindness is the point of the comparison.
    """
    encoded = encode_clip(flow.clip, flow.codec, flow.encoding_rate_bps)
    return float(encoded.rate_stats()["rate_avg_bps"])


@dataclass(frozen=True)
class AdmissionDecision:
    """One arrival's verdict."""

    time: float
    flow_label: str
    admitted: bool
    n_active: int  # active flows after this decision
    reason: str
    probe: Optional[dict] = None  # QoE probe numbers (QoE policy only)

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SessionEvent:
    """One entry of a session schedule."""

    time: float
    action: str  # "arrive" | "depart"
    label: str  # session identity (departures name an earlier arrival)
    flow: Optional[object] = None  # ExperimentSpec for arrivals

    def __post_init__(self) -> None:
        if self.action not in ("arrive", "depart"):
            raise ValueError(f"unknown session action {self.action!r}")
        if self.action == "arrive" and self.flow is None:
            raise ValueError(f"arrival {self.label!r} needs a flow spec")


def _probe_outcomes(runner: Runner, aggs: Sequence[AggregateSpec]) -> list:
    """One batch of aggregate probes; a quarantine aborts the search."""
    outcomes = runner.run_batch(list(aggs))
    for agg, outcome in zip(aggs, outcomes):
        if isinstance(outcome, FailureRecord):
            raise RuntimeError(
                f"admission probe quarantined "
                f"({agg.n_flows} flows): {outcome.describe()}"
            )
    return outcomes


def _worst_qoe(summary: AggregateSummary) -> tuple:
    """(worst VQM score, worst frame loss) over the member flows."""
    worst_score = max(fs.quality_score for fs in summary.flow_summaries)
    worst_loss = max(fs.lost_frame_fraction for fs in summary.flow_summaries)
    return worst_score, worst_loss


class QoeFloorPolicy:
    """Admit while a probe shows every member flow above the QoE floor.

    The probe is the candidate aggregate itself — active flows plus
    the arrival, sharing the profile under consideration — run through
    the normal dispatch (interleaved lane when it qualifies) and the
    runner's cache, so repeated arrivals at the same mix cost one
    simulation total.
    """

    name = "qoe-floor"

    def __init__(
        self,
        token_rate_bps: float,
        bucket_depth_bytes: float,
        floor_score: float = DEFAULT_FLOOR_SCORE,
        floor_loss: float = DEFAULT_FLOOR_LOSS,
        policing: str = "aggregate",
        policer_action: str = "drop",
        seed: int = 0,
    ):
        self.token_rate_bps = token_rate_bps
        self.bucket_depth_bytes = bucket_depth_bytes
        self.floor_score = floor_score
        self.floor_loss = floor_loss
        self.policing = policing
        self.policer_action = policer_action
        self.seed = seed

    def candidate_aggregate(self, flows: Sequence) -> AggregateSpec:
        """The probe spec for a given admitted-flow mix."""
        return AggregateSpec(
            flows=tuple(flows),
            token_rate_bps=self.token_rate_bps,
            bucket_depth_bytes=self.bucket_depth_bytes,
            policing=self.policing,
            policer_action=self.policer_action,
            seed=self.seed,
        )

    def admit(self, active: Sequence, candidate, runner: Runner) -> tuple:
        agg = self.candidate_aggregate(list(active) + [candidate])
        (summary,) = _probe_outcomes(runner, [agg])
        worst_score, worst_loss = _worst_qoe(summary)
        ok = worst_score <= self.floor_score and worst_loss <= self.floor_loss
        probe = {
            "n_flows": agg.n_flows,
            "worst_quality_score": worst_score,
            "worst_lost_frame_fraction": worst_loss,
            "aggregate_quality_score": summary.quality_score,
            "aggregate_lost_frame_fraction": summary.lost_frame_fraction,
        }
        reason = (
            f"probe worst score {worst_score:.3f} / loss {worst_loss:.3f} "
            f"vs floor {self.floor_score:.3f} / {self.floor_loss:.3f}"
        )
        return ok, reason, probe


class BandwidthBudgetPolicy:
    """Admit while the sum of nominal encoding rates fits the budget."""

    name = "bandwidth-budget"

    def __init__(self, budget_bps: float):
        if budget_bps <= 0:
            raise ValueError(f"budget must be positive, got {budget_bps}")
        self.budget_bps = budget_bps

    def admit(self, active: Sequence, candidate, runner: Runner) -> tuple:
        demand = sum(nominal_rate_bps(f) for f in active) + nominal_rate_bps(
            candidate
        )
        ok = demand <= self.budget_bps
        reason = (
            f"nominal demand {demand / 1e6:.3f} Mbps vs "
            f"budget {self.budget_bps / 1e6:.3f} Mbps"
        )
        return ok, reason, None


class AdmissionController:
    """Replay a session schedule through an admission policy.

    Events are processed in time order (ties: schedule order).
    Departures free their flow's slot unconditionally; each arrival is
    put to the policy against the then-active mix and either admitted
    (joining the mix) or rejected (leaving it unchanged).
    """

    def __init__(self, policy, runner: Optional[Runner] = None):
        self.policy = policy
        self.runner = runner or SerialRunner()
        self.active: dict = {}  # label -> flow spec, insertion-ordered

    def replay(self, events: Sequence[SessionEvent]) -> list:
        """Process a whole schedule; returns one decision per arrival."""
        decisions = []
        for event in sorted(events, key=lambda e: e.time):
            if event.action == "depart":
                self.active.pop(event.label, None)
                continue
            if event.label in self.active:
                raise ValueError(
                    f"session label {event.label!r} arrived twice"
                )
            ok, reason, probe = self.policy.admit(
                list(self.active.values()), event.flow, self.runner
            )
            if ok:
                self.active[event.label] = event.flow
            decisions.append(
                AdmissionDecision(
                    time=event.time,
                    flow_label=event.label,
                    admitted=ok,
                    n_active=len(self.active),
                    reason=reason,
                    probe=probe,
                )
            )
        return decisions


@dataclass(frozen=True)
class FrontierPoint:
    """QoE of the homogeneous aggregate at one admitted-flow count."""

    n_flows: int
    quality_score: float  # aggregate rollup (mean over flows)
    worst_quality_score: float
    lost_frame_fraction: float
    worst_lost_frame_fraction: float
    packet_drop_fraction: float
    measured_peak_rate_bps: float
    measured_mean_rate_bps: float
    qoe_admissible: bool
    bandwidth_admissible: bool

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class AdmissionFrontier:
    """Admitted-flows-vs-QoE frontier for one homogeneous scenario."""

    token_rate_bps: float
    bucket_depth_bytes: float
    budget_bps: float
    floor_score: float
    floor_loss: float
    nominal_rate_bps: float
    points: tuple
    qoe_admitted: int  # flows the QoE-floor policy admits
    bandwidth_admitted: int  # flows the naive budget admits

    @property
    def policies_disagree(self) -> bool:
        """True when the two rules stop at different flow counts."""
        return self.qoe_admitted != self.bandwidth_admitted

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary (the ``repro admit`` payload)."""
        return {
            "token_rate_bps": self.token_rate_bps,
            "bucket_depth_bytes": self.bucket_depth_bytes,
            "budget_bps": self.budget_bps,
            "floor_score": self.floor_score,
            "floor_loss": self.floor_loss,
            "nominal_rate_bps": self.nominal_rate_bps,
            "qoe_admitted": self.qoe_admitted,
            "bandwidth_admitted": self.bandwidth_admitted,
            "policies_disagree": self.policies_disagree,
            "points": [point.to_dict() for point in self.points],
        }


def admission_frontier(
    base_flow,
    max_flows: int,
    token_rate_bps: float,
    bucket_depth_bytes: float,
    floor_score: float = DEFAULT_FLOOR_SCORE,
    floor_loss: float = DEFAULT_FLOOR_LOSS,
    budget_bps: Optional[float] = None,
    runner: Optional[Runner] = None,
    spacing_s: float = 0.0,
    policing: str = "aggregate",
    policer_action: str = "drop",
    seed: int = 0,
    window_s: float = DEFAULT_WINDOW_S,
) -> AdmissionFrontier:
    """Sweep admitted-flow count 1..N over one homogeneous scenario.

    All N probe aggregates go to the runner as one batch (pooled
    runners parallelize them; cached runners skip repeats). The
    QoE-admitted count is the largest *contiguous* prefix meeting the
    floor — admission is sequential, so a dip at K closes the door
    even if K+1 were somehow admissible again. The bandwidth count is
    the naive ``budget / nominal`` cutoff (``budget`` defaults to the
    token rate itself).
    """
    if max_flows < 1:
        raise ValueError("max_flows must be at least 1")
    runner = runner or SerialRunner()
    budget = float(budget_bps) if budget_bps is not None else float(
        token_rate_bps
    )
    nominal = nominal_rate_bps(base_flow)
    aggs = [
        AggregateSpec.homogeneous(
            base_flow,
            n,
            spacing_s=spacing_s,
            token_rate_bps=token_rate_bps,
            bucket_depth_bytes=bucket_depth_bytes,
            policing=policing,
            policer_action=policer_action,
            seed=seed,
        )
        for n in range(1, max_flows + 1)
    ]
    outcomes = _probe_outcomes(runner, aggs)
    points = []
    for agg, summary in zip(aggs, outcomes):
        worst_score, worst_loss = _worst_qoe(summary)
        measured = measure_aggregate(agg, window_s=window_s)
        points.append(
            FrontierPoint(
                n_flows=agg.n_flows,
                quality_score=summary.quality_score,
                worst_quality_score=worst_score,
                lost_frame_fraction=summary.lost_frame_fraction,
                worst_lost_frame_fraction=worst_loss,
                packet_drop_fraction=summary.packet_drop_fraction,
                measured_peak_rate_bps=measured.peak_rate_bps,
                measured_mean_rate_bps=measured.mean_rate_bps,
                qoe_admissible=(
                    worst_score <= floor_score and worst_loss <= floor_loss
                ),
                bandwidth_admissible=agg.n_flows * nominal <= budget,
            )
        )
    qoe_admitted = 0
    for point in points:
        if not point.qoe_admissible:
            break
        qoe_admitted = point.n_flows
    bandwidth_admitted = max(
        (p.n_flows for p in points if p.bandwidth_admissible), default=0
    )
    return AdmissionFrontier(
        token_rate_bps=float(token_rate_bps),
        bucket_depth_bytes=float(bucket_depth_bytes),
        budget_bps=budget,
        floor_score=floor_score,
        floor_loss=floor_loss,
        nominal_rate_bps=nominal,
        points=tuple(points),
        qoe_admitted=qoe_admitted,
        bandwidth_admitted=bandwidth_admitted,
    )
