"""Windowed aggregate-rate measurement.

Admission control needs an estimate of the load the current EF
aggregate *offers* at the policing point — not the nominal sum of
encoding rates, which ignores wire overhead and burstiness. Following
the measurement-based admission literature (time-window estimators à
la Qadir et al.), the offered load is measured over tumbling windows
of the arrival stream: bytes per window, converted to a rate, with an
EWMA smoothing the window series into one online estimate.

The arrays come straight from the interleaved lane
(:func:`repro.flows.multipath.merged_arrival_arrays`) — the same
pre-policer stream the shared token bucket scans — so measurement and
policing see literally the same packets.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

#: Default tumbling-window width; two orders above the per-packet
#: timescale, one below the GOP timescale, so bursts register without
#: single packets dominating.
DEFAULT_WINDOW_S = 0.1

#: Default EWMA gain (the classic 1/8 of RFC 6298-style estimators).
DEFAULT_EWMA_ALPHA = 0.125


@dataclass(frozen=True)
class RateMeasurement:
    """Offered-load estimate over one arrival stream."""

    window_s: float
    n_windows: int
    total_bytes: int
    mean_rate_bps: float  # busy-span average
    peak_rate_bps: float  # worst single window
    ewma_rate_bps: float  # final smoothed online estimate
    ewma_alpha: float

    def to_dict(self) -> dict:
        """Plain JSON-able dictionary."""
        return dataclasses.asdict(self)


def measure_rate(
    times,
    sizes,
    window_s: float = DEFAULT_WINDOW_S,
    alpha: float = DEFAULT_EWMA_ALPHA,
) -> RateMeasurement:
    """Tumbling-window rate estimate of an arrival stream.

    ``times`` are arrival instants (seconds, any order), ``sizes`` the
    matching wire bytes. Windows tile ``[0, max(times)]``; empty
    windows count as zero load (an idle aggregate *is* offering
    nothing), which is what drags the EWMA down between bursts.
    """
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"EWMA gain must be in (0, 1], got {alpha}")
    times = np.asarray(times, dtype=np.float64)
    sizes = np.asarray(sizes)
    if times.shape != sizes.shape:
        raise ValueError("times and sizes must align")
    if times.size == 0:
        return RateMeasurement(
            window_s=window_s,
            n_windows=0,
            total_bytes=0,
            mean_rate_bps=0.0,
            peak_rate_bps=0.0,
            ewma_rate_bps=0.0,
            ewma_alpha=alpha,
        )
    idx = np.floor(times / window_s).astype(np.int64)
    n_windows = int(idx.max()) + 1
    window_bytes = np.bincount(idx, weights=sizes, minlength=n_windows)
    window_rates = window_bytes * (8.0 / window_s)
    estimate = float(window_rates[0])
    for rate in window_rates[1:].tolist():
        estimate += alpha * (rate - estimate)
    return RateMeasurement(
        window_s=window_s,
        n_windows=n_windows,
        total_bytes=int(sizes.sum()),
        mean_rate_bps=float(window_rates.mean()),
        peak_rate_bps=float(window_rates.max()),
        ewma_rate_bps=estimate,
        ewma_alpha=alpha,
    )


def measure_aggregate(
    agg,
    window_s: float = DEFAULT_WINDOW_S,
    alpha: float = DEFAULT_EWMA_ALPHA,
) -> RateMeasurement:
    """Offered load of an :class:`~repro.flows.aggregate.AggregateSpec`.

    Measures the merged pre-policer arrival stream the interleaved
    lane would police — nominal encoding rates plus wire overhead plus
    whatever clumping the campus jitter produced.
    """
    from repro.flows.multipath import merged_arrival_arrays

    times, sizes, _flow_idx = merged_arrival_arrays(agg)
    return measure_rate(times, sizes, window_s=window_s, alpha=alpha)
