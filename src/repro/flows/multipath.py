"""Interleaved multi-flow fast lane.

One aggregate run is N single-flow front ends feeding one shared
policing point. The front ends are already pure functions of the spec
(:func:`repro.sim.fastpath.compute_schedule` plus each flow's batched
jitter vector), so the only genuinely *coupled* computation is the
policer: every packet's conformance depends on the token state left by
whichever flow arrived before it. This module merges the per-flow
release streams into one time-sorted arrival array and scans the
shared bucket once — speculatively vectorized — then pushes the
survivors through the shared backbone and demultiplexes per-flow
sessions for the unchanged offline stages (playout finalize, VQM,
path metrics).

**The contract is bit-identity with the engine fan-in lane**
(:func:`repro.flows.aggregate.run_engine_aggregate`): every per-flow
summary field and the aggregate rollup must match, which the ``flows``
equivalence suite checks field by field.

The speculative token scan (:func:`_bucket_verdicts`) exploits two
IEEE-754 identities: ``x + 0.0 == x`` for the non-negative token
level, and ``min(depth, x) == x`` whenever ``x <= depth`` — so as long
as no refill clips at the brim and no packet fails conformance, the
engine's guarded refill/consume chain collapses to a strictly
sequential ``np.add.accumulate`` over interleaved ``[+elapsed·rate,
-size]`` increments. Violations of either assumption are detected on
the candidate values themselves (they are exact up to the first
violation), replayed with one scalar engine-identical step, and the
speculation resumes. Conform-heavy regimes — the admission frontier's
operating point — run at array speed; drop-heavy regimes degrade
toward the scalar scan, never past it by more than a chunk replay.

``REPRO_FLOWPATH`` mirrors ``REPRO_FASTPATH``: ``auto`` (default)
uses this lane when the aggregate qualifies (no backbone cross
traffic), ``0`` forces the engine lane, ``1`` raises
:class:`FlowpathUnsupported` on a non-qualifying aggregate.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Optional

import numpy as np

from repro.core.fastlane import result_from_session, run_fastpath
from repro.core.runner import ResultSummary
from repro.diffserv.policer import PolicerStats
from repro.flows.aggregate import (
    AggregateSpec,
    AggregateSummary,
    aggregate_config,
    derive_flow_seed,
    flow_jitter_delays,
    rollup_summaries,
)
from repro.sim.batchpath import BatchVqmTool
from repro.sim.fastpath import (
    FastPathSession,
    _fifo_departs,
    _priority_link,
    client_frame_arrays,
    compute_schedule,
)
from repro.video.clips import encode_clip
from repro.vqm.tool import VqmTool

#: Environment variable controlling aggregate dispatch (see module
#: docstring); same auto/0/1 semantics as ``REPRO_FASTPATH``.
FLOWPATH_ENV = "REPRO_FLOWPATH"

#: Largest speculation window of the shared-bucket scan. Windows
#: gallop: they double after every clean commit and halve after every
#: violation, so clamp-free stretches run at full array width while
#: clamp-dense stretches pay small rebuilds instead of chunk-sized ones.
SCAN_CHUNK = 8192

#: Smallest speculation window (the galloping floor).
SCAN_CHUNK_MIN = 128

#: Window of the drop-run regime: consecutive non-conformant packets
#: committed per accumulate while the bucket stays below every size.
DROP_RUN = 512


class FlowpathUnsupported(RuntimeError):
    """``REPRO_FLOWPATH=1`` met an aggregate this lane cannot serve."""


def flowpath_mode() -> str:
    """Current override mode: ``"auto"``, ``"0"``, or ``"1"``."""
    mode = os.environ.get(FLOWPATH_ENV, "auto").strip().lower()
    if mode in ("0", "1"):
        return mode
    return "auto"


def qualifies_for_flowpath(agg: AggregateSpec) -> bool:
    """True when the interleaved lane models this aggregate exactly.

    Member-flow restrictions are already enforced by
    :class:`~repro.flows.aggregate.AggregateSpec` validation; the only
    aggregate-level feature needing the event loop is backbone cross
    traffic (Poisson arrivals interleaving with the merged stream at
    the priority queues).
    """
    return agg.cross_traffic_bps == 0


def use_flowpath(agg: AggregateSpec) -> bool:
    """Dispatch decision for one aggregate, honouring ``REPRO_FLOWPATH``."""
    mode = flowpath_mode()
    if mode == "0":
        return False
    if qualifies_for_flowpath(agg):
        return True
    if mode == "1":
        raise FlowpathUnsupported(
            f"REPRO_FLOWPATH=1 but the aggregate does not qualify for the "
            f"interleaved lane: {agg!r}"
        )
    return False


def _bucket_verdicts(
    times: np.ndarray,
    sizes_f: np.ndarray,
    rate_bps: float,
    depth_bytes: float,
) -> np.ndarray:
    """Conformance mask of a token-bucket scan over sorted arrivals.

    Bit-identical to feeding the arrivals one by one through
    :meth:`repro.diffserv.token_bucket.TokenBucket.try_consume` on a
    bucket created at t=0 (full, ``last_update=0``). Three speculative
    regimes cover the three steady states a policed aggregate visits:

    * **linear** (the module-docstring accumulate): no refill clips at
      the brim and every packet conforms — the well-inside-the-bucket
      band. Violation checks on the candidates are *strict* (`> depth`,
      `< 0`) because an exact brim-touch refill and an exact
      zero-token consume follow the identities and are not divergences.
    * **brim runs**: a refill that clips leaves ``tokens == depth``,
      and a conform then leaves ``depth - size[k]`` — a state that
      depends only on the *previous packet's size*, not on history. So
      whether step ``k`` re-clips and conforms is an elementwise
      predicate (``brim_ok``), precomputed once; a whole run of
      brim-riding packets commits as one slice. Over-provisioned
      aggregates live here.
    * **drop runs**: while the bucket stays below both the brim and
      every arriving size, nothing consumes and the token level is
      again a pure accumulate of refill credits. Saturated aggregates
      (the admission frontier's far side) live here.

    Every committed value is produced by the same IEEE-754 operations,
    in the same order, as the engine's guarded scalar step.
    """
    n = len(times)
    conform = np.zeros(n, dtype=bool)
    if n == 0:
        return conform
    rate_bytes = rate_bps / 8.0
    depth = float(depth_bytes)
    # Per-step refill credit: the same ``(now - prev) * rate`` product
    # the scalar step computes (prev is 0.0 before the first packet).
    credit = np.empty(n, dtype=np.float64)
    credit[0] = times[0] - 0.0
    np.subtract(times[1:], times[:-1], out=credit[1:])
    np.multiply(credit, rate_bytes, out=credit)
    # Brim-run table: entering step k with ``tokens == depth - size[k-1]``
    # (the state a brim-clipped conform leaves), the refill re-clips and
    # the packet conforms iff brim_ok[k]. brim_ok[0] stays False: packet
    # 0 has no brim predecessor.
    leftover = depth - sizes_f
    brim_ok = np.zeros(n, dtype=bool)
    if n > 1:
        np.greater_equal(leftover[:-1] + credit[1:], depth, out=brim_ok[1:])
        brim_ok[1:] &= sizes_f[1:] <= depth
    brim_stop = np.flatnonzero(~brim_ok)

    tokens = depth
    chunk = SCAN_CHUNK
    i = 0
    while i < n:
        j = min(i + chunk, n)
        m = j - i
        increments = np.empty(2 * m + 1, dtype=np.float64)
        increments[0] = tokens
        increments[1::2] = credit[i:j]
        np.negative(sizes_f[i:j], out=increments[2::2])
        candidate = np.add.accumulate(increments)
        after_refill = candidate[1::2]
        after_consume = candidate[2::2]
        bad = np.flatnonzero((after_refill > depth) | (after_consume < 0.0))
        if bad.size == 0:
            conform[i:j] = True
            tokens = float(candidate[-1])
            i = j
            chunk = min(chunk * 2, SCAN_CHUNK)
            continue
        v = int(bad[0])
        conform[i : i + v] = True
        if v > 0:
            tokens = float(after_consume[v - 1])
        chunk = max(chunk // 2, SCAN_CHUNK_MIN)
        p = i + v
        refilled = float(after_refill[v])  # exact: prefix had no clamps
        size_p = float(sizes_f[p])
        if refilled > depth:
            # Brim clip: the stored level is exactly ``depth``.
            if size_p <= depth:
                conform[p] = True
                tokens = depth - size_p
                # Ride the brim: commit the maximal brim_ok run.
                k = int(np.searchsorted(brim_stop, p + 1))
                stop = int(brim_stop[k]) if k < brim_stop.size else n
                if stop > p + 1:
                    conform[p + 1 : stop] = True
                    tokens = float(leftover[stop - 1])
                i = stop
            else:
                tokens = depth  # oversize: can never conform
                i = p + 1
        else:
            # Token shortfall: packet p drops at level ``refilled``.
            tokens = refilled
            q = p + 1
            stop = min(q + DROP_RUN, n)
            if stop > q:
                run = np.empty(stop - q + 1, dtype=np.float64)
                run[0] = tokens
                run[1:] = credit[q:stop]
                level = np.add.accumulate(run)[1:]
                ok = (level <= depth) & (level < sizes_f[q:stop])
                run_bad = np.flatnonzero(~ok)
                b = int(run_bad[0]) if run_bad.size else ok.size
                if b > 0:
                    tokens = float(level[b - 1])
                i = q + b
            else:
                i = q
    return conform


class _MergedStream:
    """Per-flow schedules merged into one time-sorted arrival stream."""

    def __init__(self, agg: AggregateSpec, cfg):
        self.encodeds = []
        self.schedules = []
        self.releases = []
        schedule_cache: dict = {}
        for i, flow in enumerate(agg.flows):
            encoded = encode_clip(flow.clip, flow.codec, flow.encoding_rate_bps)
            key = (
                flow.clip,
                flow.codec,
                flow.encoding_rate_bps,
                agg.start_offsets[i],
            )
            sched = schedule_cache.get(key)
            if sched is None:
                sched = compute_schedule(encoded, cfg, start=agg.start_offsets[i])
                schedule_cache[key] = sched
            delays = flow_jitter_delays(
                derive_flow_seed(agg.seed, i), sched.n_packets, cfg
            )
            campus = np.asarray(sched.campus_departs, dtype=np.float64)
            self.encodeds.append(encoded)
            self.schedules.append(sched)
            # The jitter element's monotone clamp, vectorized: the
            # engine computes max(arrival + delay, last) packet by
            # packet; maximum.accumulate is that exact chain (max has
            # no rounding) and the initial last=0.0 is absorbed since
            # every release is positive.
            self.releases.append(np.maximum.accumulate(campus + delays))

        counts = [len(r) for r in self.releases]
        self.counts = counts
        self.times = np.concatenate(self.releases) if counts else np.empty(0)
        self.sizes = np.concatenate(
            [s.sizes_arr for s in self.schedules]
        ).astype(np.int64)
        self.fids = np.concatenate([s.fids_arr for s in self.schedules])
        self.flow_idx = np.repeat(np.arange(len(counts)), counts)
        self.local_idx = np.concatenate(
            [np.arange(c, dtype=np.int64) for c in counts]
        )
        # Time-major merge; flow index breaks cross-flow ties and the
        # stable sort keeps within-flow FIFO order. (Cross-flow exact
        # ties are measure-zero under distinct derived jitter seeds;
        # the deterministic tiebreak just keeps the merge well-defined.)
        order = np.lexsort((self.flow_idx, self.times))
        self.order = order  # concat position -> merged position map
        self.times = self.times[order]
        self.sizes = self.sizes[order]
        self.fids = self.fids[order]
        self.flow_idx = self.flow_idx[order]
        self.local_idx = self.local_idx[order]


def _flow_stats(
    stream: _MergedStream,
    conform: np.ndarray,
    action_drop: bool,
    n_flows: int,
) -> list:
    """Per-flow :class:`PolicerStats` from the merged verdict mask.

    One ``bincount`` pass per counter instead of a per-flow mask sweep:
    byte sums stay exact (they are far below 2**53) and the dropped
    frame-id sets come from one unique pass over (flow, frame) pairs.
    """
    flow_idx = stream.flow_idx
    sizes = stream.sizes
    conf_flows = flow_idx[conform]
    conf_counts = np.bincount(conf_flows, minlength=n_flows)
    conf_bytes = np.bincount(
        conf_flows, weights=sizes[conform], minlength=n_flows
    )
    nonconform = ~conform
    non_flows = flow_idx[nonconform]
    non_counts = np.bincount(non_flows, minlength=n_flows)
    drop_sets: list[set] = [set() for _ in range(n_flows)]
    if action_drop:
        non_bytes = np.bincount(
            non_flows, weights=sizes[nonconform], minlength=n_flows
        )
        drop_fids = stream.fids[nonconform]
        if drop_fids.size:
            base = int(drop_fids.min())
            span = int(drop_fids.max()) - base + 1
            pairs = np.unique(
                non_flows.astype(np.int64) * span + (drop_fids - base)
            )
            pair_flows = pairs // span
            bounds = np.searchsorted(pair_flows, np.arange(n_flows + 1))
            pair_fids = (pairs % span + base).tolist()
            for i in range(n_flows):
                drop_sets[i] = set(pair_fids[bounds[i] : bounds[i + 1]])
    stats = []
    for i in range(n_flows):
        st = PolicerStats()
        st.conformant_packets = int(conf_counts[i])
        st.conformant_bytes = int(conf_bytes[i])
        if action_drop:
            st.dropped_packets = int(non_counts[i])
            st.dropped_bytes = int(non_bytes[i])
            st.dropped_frame_ids = drop_sets[i]
        else:
            st.remarked_packets = int(non_counts[i])
        stats.append(st)
    return stats


def run_multipath(
    agg: AggregateSpec, vqm_tool: Optional[VqmTool] = None
) -> AggregateSummary:
    """Run one aggregate through the interleaved array lane.

    Returns the same :class:`AggregateSummary` (per-flow summaries and
    rollup, field for field) as
    :func:`~repro.flows.aggregate.run_engine_aggregate`.
    """
    cfg = aggregate_config(agg)
    n = agg.n_flows
    stream = _MergedStream(agg, cfg)
    action_drop = agg.policer_action == "drop"

    # ------------------------------------------------------------------
    # Policing: one shared scan over the merged stream, or one
    # independent scan per flow (identical profile) in per-flow mode.
    # ------------------------------------------------------------------
    sizes_f = stream.sizes.astype(np.float64)
    if agg.policing == "aggregate":
        conform = _bucket_verdicts(
            stream.times, sizes_f, agg.token_rate_bps, agg.bucket_depth_bytes
        )
    else:
        # Per-flow buckets see only their own (pre-merge, already
        # sorted) release stream; scatter the verdicts back into
        # merged order through the stored permutation.
        concat = np.zeros(len(stream.times), dtype=bool)
        offset = 0
        for i in range(n):
            count = stream.counts[i]
            concat[offset : offset + count] = _bucket_verdicts(
                stream.releases[i],
                stream.schedules[i].sizes_arr.astype(np.float64),
                agg.token_rate_bps,
                agg.bucket_depth_bytes,
            )
            offset += count
        conform = concat[stream.order]
    flow_stats = _flow_stats(stream, conform, action_drop, n)

    # ------------------------------------------------------------------
    # Shared backbone: survivors in policer-exit order. Drop action
    # leaves a pure-EF stream (FIFO recurrence per hop); remark mixes
    # EF and BE through the strict-priority queues.
    # ------------------------------------------------------------------
    keep = conform if action_drop else np.ones(len(conform), dtype=bool)
    arr = stream.times[keep]
    surv_sizes = stream.sizes[keep]
    surv_flow = stream.flow_idx[keep]
    surv_local = stream.local_idx[keep]
    surv_ef = conform[keep]
    hop_prop = cfg.backbone_hop_delay_s
    mixed = bool(surv_ef.size) and not surv_ef.all()
    tx = ((surv_sizes * 8) / cfg.backbone_rate_bps).tolist()
    if mixed:
        arr_l = arr.tolist()
        ef_l = surv_ef.tolist()
        flow_l = surv_flow.tolist()
        local_l = surv_local.tolist()
        for _hop in range(cfg.backbone_hops):
            departs, order = _priority_link(arr_l, tx, ef_l)
            arr_l = [departs[k] + hop_prop for k in order]
            tx = [tx[k] for k in order]
            ef_l = [ef_l[k] for k in order]
            flow_l = [flow_l[k] for k in order]
            local_l = [local_l[k] for k in order]
        final_times = np.asarray(arr_l, dtype=np.float64)
        final_flow = np.asarray(flow_l, dtype=np.int64)
        final_local = np.asarray(local_l, dtype=np.int64)
    else:
        arr_l = arr.tolist()
        for _hop in range(cfg.backbone_hops):
            departs = _fifo_departs(arr_l, tx)
            arr_l = [d + hop_prop for d in departs]
        final_times = np.asarray(arr_l, dtype=np.float64)
        final_flow = surv_flow
        final_local = surv_local

    # ------------------------------------------------------------------
    # Demux: per-flow sessions through the unchanged offline stages.
    # One vectorized VQM tool is shared across flows (stateless per
    # call apart from its bitwise-equal moment cache).
    # ------------------------------------------------------------------
    tool = vqm_tool if vqm_tool is not None else BatchVqmTool()
    # Stable flow-sort of the delivered stream: one O(n log n) pass
    # replaces N boolean mask sweeps, and stability preserves each
    # flow's delivery order exactly as the mask would.
    demux = np.argsort(final_flow, kind="stable")
    bounds = np.searchsorted(final_flow[demux], np.arange(n + 1))
    flow_summaries = []
    for i, flow in enumerate(agg.flows):
        sched = stream.schedules[i]
        member = demux[bounds[i] : bounds[i + 1]]
        recv_ids = final_local[member]
        recv_times = final_times[member]
        received_bytes, completion = client_frame_arrays(
            stream.encodeds[i],
            sched.fids_arr,
            sched.lens_arr,
            recv_ids,
            recv_times,
        )
        session = FastPathSession(
            send_times=np.asarray(sched.emit_times, dtype=np.float64),
            recv_ids=recv_ids,
            recv_times=recv_times,
            policer_stats=flow_stats[i],
            server_messages=sched.n_packets,
            server_packets=sched.n_packets,
            server_bytes=int(np.sum(sched.sizes_arr)) if sched.n_packets else 0,
            received_packets=int(member.size),
            received_bytes=received_bytes,
            completion=completion,
            first_arrival=float(recv_times[0]) if recv_times.size else None,
        )
        result = result_from_session(flow, stream.encodeds[i], session, tool)
        flow_summaries.append(ResultSummary.from_result(result))
    return rollup_summaries(flow_summaries)


def merged_arrival_arrays(agg: AggregateSpec) -> tuple:
    """Pre-policer merged arrival stream ``(times, sizes, flow_idx)``.

    The measurement layer (:mod:`repro.flows.measure`) and the
    admission controller read the offered aggregate load from these
    arrays — the same ones the shared scan polices.
    """
    stream = _MergedStream(agg, aggregate_config(agg))
    return stream.times, stream.sizes, stream.flow_idx


def run_flows_loop(
    agg: AggregateSpec, vqm_tool: Optional[VqmTool] = None
) -> list:
    """Naive uncontended baseline: independent single-flow runs.

    N separate scalar fast-path pipelines, each with its own RNG
    replay, policer scan, and VQM tool — and, importantly, each
    policing its *own* full-rate bucket, because the single-flow
    pipeline cannot express a shared one. It approximates an aggregate
    only in per-flow mode with zero offsets. The scale benchmark
    quotes it as a secondary reference (a lower bound on what any
    per-flow decomposition costs); its headline baseline is the
    *contended* loop built from
    :func:`repro.flows.aggregate.contended_flow_specs`, which models
    the coupling and therefore needs the event engine per flow.
    """
    summaries = []
    for i, flow in enumerate(agg.flows):
        spec = replace(
            flow,
            token_rate_bps=agg.token_rate_bps,
            bucket_depth_bytes=agg.bucket_depth_bytes,
            policer_action=agg.policer_action,
            seed=derive_flow_seed(agg.seed, i),
        )
        result = run_fastpath(spec, vqm_tool=vqm_tool)
        summaries.append(ResultSummary.from_result(result))
    return summaries
