"""Multi-flow aggregate experiments: N sessions, one EF profile.

The paper's experiments police a single video flow. A DiffServ ingress
polices the EF *aggregate*: every admitted session shares one token
bucket, so each flow's conformance depends on who else is bursting at
the same instant. :class:`AggregateSpec` describes that situation — N
member :class:`~repro.core.experiment.ExperimentSpec` flows with
per-flow start offsets and independently derived seeds, one shared
(or, for comparison, per-flow) policer profile, and an optional
best-effort cross-traffic mix on the backbone.

Two execution lanes produce bit-identical results:

* :func:`run_engine_aggregate` (here) builds the fan-in topology in
  the event engine — per-flow campus front ends converging on one
  border router — and is the oracle for small N.
* :func:`repro.flows.multipath.run_multipath` merges the per-flow
  message schedules into one interleaved arrival stream and scans the
  shared bucket with a single speculative vectorized pass, making
  100–1000-flow aggregates tractable.

Both lanes draw each flow's campus jitter from the same
:func:`flow_jitter_delays` batch (seeded by :func:`derive_flow_seed`),
so the only difference between them is *how* the arithmetic is
scheduled, never *what* is computed. Note the batched draw scheme
differs from the single-flow engine's per-packet stream, so an N=1
aggregate is a distinct experiment from the member spec run alone;
single-flow behavior is untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import zlib
from dataclasses import dataclass, replace
from typing import ClassVar, Optional, Sequence

import numpy as np

from repro.core.experiment import (
    RUN_SLACK_S,
    ExperimentResult,
    ExperimentSpec,
    _policer_action,
    assess_playback,
)
from repro.core.runner import ResultSummary
from repro.client.playout import PlayoutClient
from repro.client.reassembly import DatagramReassembler
from repro.diffserv.policer import Policer, PolicerStats
from repro.diffserv.scheduler import PriorityScheduler
from repro.server.videocharger import VideoChargerServer, message_schedule
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.tracer import FlowTracer
from repro.testbeds.crosstraffic import PoissonSource
from repro.testbeds.jitter import JitterElement
from repro.testbeds.qbone import QBoneTestbedConfig
from repro.units import mbps
from repro.video.clips import encode_clip
from repro.vqm.tool import VqmTool

#: Campus front-end constants, matching the single-flow QBone build
#: (qbone.py wires base_delay=0.0005 into its JitterElement) and the
#: JitterElement defaults for contention bursts.
JITTER_BASE_DELAY_S = 0.0005
JITTER_BURST_PROBABILITY = 0.004
JITTER_BURST_RANGE_S = (0.001, 0.004)


def derive_flow_seed(base_seed: int, flow_index: int) -> int:
    """Stable per-flow RNG seed from the aggregate seed and flow index.

    A content hash rather than ``base_seed + index`` so neighbouring
    aggregate seeds cannot collide into overlapping flow streams, and
    a pure function of ``(base_seed, flow_index)`` so a flow's stream
    does not depend on which other flows are in the set or how they
    are ordered.
    """
    payload = f"repro.flows:{base_seed}:{flow_index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def flow_jitter_delays(
    flow_seed: int, n_packets: int, cfg: QBoneTestbedConfig
) -> np.ndarray:
    """Draw one flow's whole campus-delay vector up front.

    Returns the *total* pre-policer delay per packet (base + truncated
    exponential jitter + occasional contention bursts), indexed by
    emission order. Both aggregate lanes call this same function with
    the same derived seed, so the engine's JitterElement (precomputed
    mode) and the fast lane's ``maximum.accumulate`` replay release
    bit-identical timestamps by construction.

    The burst uniforms are drawn unconditionally (``size=n``) so the
    stream consumed is a fixed function of ``n_packets`` — masking
    afterwards keeps the draw order independent of which packets
    actually burst.
    """
    key = zlib.crc32(b"jitter") & 0x7FFFFFFF
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=flow_seed, spawn_key=(key,))
    )
    delays = np.full(n_packets, JITTER_BASE_DELAY_S, dtype=np.float64)
    if cfg.jitter_mean_s > 0:
        delays = delays + np.minimum(
            rng.exponential(cfg.jitter_mean_s, size=n_packets), cfg.jitter_max_s
        )
    burst = rng.random(n_packets) < JITTER_BURST_PROBABILITY
    extra = rng.uniform(*JITTER_BURST_RANGE_S, size=n_packets)
    delays[burst] += extra[burst]
    return delays


#: Fields a member flow may not use inside an aggregate: anything that
#: needs the event loop's feedback cycles, plus per-flow policing and
#: shaping knobs the aggregate owns.
_UNSUPPORTED_FLOW_REASONS = (
    ("testbed", "qbone", "aggregates model the QBone path only"),
    ("server", "videocharger", "aggregates stream VideoCharger CBR only"),
    ("transport", "udp", "aggregates stream UDP only"),
)


@dataclass(frozen=True)
class AggregateSpec:
    """N concurrent flows sharing one EF policing profile.

    ``flows`` holds the member :class:`ExperimentSpec` descriptions;
    their own ``token_rate_bps`` / ``bucket_depth_bytes`` / ``seed``
    fields are ignored — the aggregate owns policing (``policing``
    selects one shared bucket vs one identical bucket per flow) and
    derives each flow's RNG seed from its index via
    :func:`derive_flow_seed`. ``start_offsets`` staggers session
    starts (seconds, one per flow, default all zero).
    """

    flows: tuple = ()
    start_offsets: tuple = ()
    token_rate_bps: float = mbps(1.9)
    bucket_depth_bytes: float = 3000.0
    policing: str = "aggregate"  # aggregate | per-flow
    policer_action: str = "drop"  # drop | remark
    cross_traffic_bps: float = 0.0  # per backbone hop (engine lane only)
    seed: int = 0

    #: Dispatch marker consumed by runner/fastlane/export layers
    #: (ClassVar so dataclasses.asdict / fingerprints skip it).
    is_aggregate: ClassVar[bool] = True

    def __post_init__(self) -> None:
        flows = tuple(self.flows)
        if not flows:
            raise ValueError("an aggregate needs at least one flow")
        offsets = tuple(float(x) for x in self.start_offsets) or (0.0,) * len(
            flows
        )
        if len(offsets) != len(flows):
            raise ValueError(
                f"{len(flows)} flows but {len(offsets)} start offsets"
            )
        if any(off < 0 for off in offsets):
            raise ValueError("start offsets cannot be negative")
        if self.policing not in ("aggregate", "per-flow"):
            raise ValueError(f"unknown policing mode {self.policing!r}")
        if self.policer_action not in ("drop", "remark"):
            raise ValueError(
                f"unknown policer action {self.policer_action!r}"
            )
        for i, flow in enumerate(flows):
            for fname, want, why in _UNSUPPORTED_FLOW_REASONS:
                if getattr(flow, fname) != want:
                    raise ValueError(f"flow {i}: {why}")
            if (
                flow.adaptation
                or flow.arq
                or flow.fec_group
                or flow.feedback_loss
                or flow.client_buffer_frames
                or flow.capture_trace
                or flow.use_shaper
                or flow.cross_traffic_bps
            ):
                raise ValueError(
                    f"flow {i}: adaptation/recovery/shaping/trace/cross "
                    "knobs are not supported inside an aggregate"
                )
        object.__setattr__(self, "flows", flows)
        object.__setattr__(self, "start_offsets", offsets)

    @property
    def n_flows(self) -> int:
        """Number of member flows."""
        return len(self.flows)

    def flow_ids(self) -> list:
        """Stable per-flow identifiers, ``flow0..flowN-1``."""
        return [f"flow{i}" for i in range(len(self.flows))]

    def with_token_bucket(
        self, token_rate_bps: float, bucket_depth_bytes: float
    ) -> "AggregateSpec":
        """Copy at a different profile (sweep-grid interface)."""
        return replace(
            self,
            token_rate_bps=token_rate_bps,
            bucket_depth_bytes=bucket_depth_bytes,
        )

    @classmethod
    def homogeneous(
        cls,
        base: ExperimentSpec,
        n_flows: int,
        spacing_s: float = 0.0,
        policing: str = "aggregate",
        policer_action: Optional[str] = None,
        token_rate_bps: Optional[float] = None,
        bucket_depth_bytes: Optional[float] = None,
        cross_traffic_bps: float = 0.0,
        seed: Optional[int] = None,
    ) -> "AggregateSpec":
        """N copies of ``base`` starting ``spacing_s`` apart.

        Policing defaults are lifted from ``base`` (so ``sweep
        --flows N`` scales an existing single-flow command line) and
        may be overridden individually.
        """
        if n_flows < 1:
            raise ValueError("n_flows must be at least 1")
        if spacing_s < 0:
            raise ValueError("spacing cannot be negative")
        return cls(
            flows=tuple(base for _ in range(n_flows)),
            start_offsets=tuple(i * spacing_s for i in range(n_flows)),
            token_rate_bps=(
                base.token_rate_bps if token_rate_bps is None else token_rate_bps
            ),
            bucket_depth_bytes=(
                base.bucket_depth_bytes
                if bucket_depth_bytes is None
                else bucket_depth_bytes
            ),
            policing=policing,
            policer_action=(
                base.policer_action if policer_action is None else policer_action
            ),
            cross_traffic_bps=cross_traffic_bps,
            seed=base.seed if seed is None else seed,
        )


@dataclass(frozen=True)
class AggregateSummary(ResultSummary):
    """One aggregate run: per-flow summaries plus their rollup.

    The inherited scalar fields hold the aggregate rollup (means for
    quality fractions, sums for counters — see
    :func:`rollup_summaries`), so sweep tables, CSV export, and the
    sampler read an aggregate point exactly like a single-flow one.
    ``flow_summaries`` keeps the full per-flow records.
    """

    n_flows: int = 0
    flow_summaries: tuple = ()

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        if data.get("flow_trace") is None:
            data.pop("flow_trace", None)
        data["flow_summaries"] = [fs.to_dict() for fs in self.flow_summaries]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateSummary":
        data = dict(data)
        members = tuple(
            ResultSummary.from_dict(d) for d in data.pop("flow_summaries", ())
        )
        names = {f.name for f in dataclasses.fields(cls)} - {"flow_summaries"}
        return cls(
            flow_summaries=members,
            **{k: v for k, v in data.items() if k in names},
        )


def rollup_summaries(flow_summaries: Sequence[ResultSummary]) -> AggregateSummary:
    """Fold per-flow summaries into one :class:`AggregateSummary`.

    Both lanes call this on their per-flow results (always in flow
    order), so rollup bit-identity follows from per-flow bit-identity.
    Quality fractions average across flows; packet/byte/stall counters
    sum; the network block averages delay and jitter weighted by
    delivered packets, loss weighted by sent packets, and takes the
    worst flow for the tail percentiles.
    """
    flows = tuple(flow_summaries)
    if not flows:
        raise ValueError("cannot roll up an empty flow set")
    n = len(flows)

    def fmean(name: str) -> float:
        total = 0.0
        for s in flows:
            total += getattr(s, name)
        return total / n

    conformant = sum(s.conformant_packets for s in flows)
    dropped = sum(s.dropped_packets for s in flows)
    remarked = sum(s.remarked_packets for s in flows)
    total_packets = conformant + dropped + remarked

    delivered = [s.client_packets for s in flows]
    sent = [s.server_packets for s in flows]
    runs = [int(s.network.get("loss_runs", 0)) for s in flows]

    def wavg(key: str, weights) -> float:
        total_w = sum(weights)
        if not total_w:
            return 0.0
        acc = 0.0
        for s, w in zip(flows, weights):
            acc += float(s.network.get(key, 0.0)) * w
        return acc / total_w

    def worst(key: str) -> float:
        return max(float(s.network.get(key, 0.0)) for s in flows)

    network = {
        "delay_mean_s": wavg("delay_mean_s", delivered),
        "delay_p95_s": worst("delay_p95_s"),
        "delay_p99_s": worst("delay_p99_s"),
        "delay_max_s": worst("delay_max_s"),
        "jitter_rfc3550_s": wavg("jitter_rfc3550_s", delivered),
        "loss_fraction": wavg("loss_fraction", sent),
        "loss_runs": sum(runs),
        "loss_mean_run": wavg("loss_mean_run", runs),
        "loss_max_run": max(
            int(s.network.get("loss_max_run", 0)) for s in flows
        ),
    }
    return AggregateSummary(
        quality_score=fmean("quality_score"),
        lost_frame_fraction=fmean("lost_frame_fraction"),
        packet_drop_fraction=(
            dropped / total_packets if total_packets else 0.0
        ),
        frozen_fraction=fmean("frozen_fraction"),
        rebuffer_events=sum(s.rebuffer_events for s in flows),
        total_stall_s=sum(s.total_stall_s for s in flows),
        conformant_packets=conformant,
        dropped_packets=dropped,
        remarked_packets=remarked,
        dropped_bytes=sum(s.dropped_bytes for s in flows),
        server_aborted=any(s.server_aborted for s in flows),
        server_packets=sum(sent),
        client_packets=sum(delivered),
        network=network,
        n_flows=n,
        flow_summaries=flows,
    )


def contended_flow_specs(agg: AggregateSpec) -> list:
    """Single-flow stand-ins for running an aggregate one flow at a time.

    This is the pre-aggregate way to ask an aggregate question with
    single-flow tools: simulate each member alone against the shared
    policing profile, with the other members' offered load standing in
    as best-effort cross traffic on every backbone hop. Cross traffic
    disqualifies the single-flow fast path, so each stand-in costs a
    full event-engine run — and the approximation is still wrong in a
    way no per-flow model can fix: the stand-in cross traffic competes
    for link capacity through the priority scheduler but never for the
    *EF token bucket*, so shared-policer drops are invisible to it.
    The flows scale benchmark uses these specs as its baseline for
    both cost and answer quality; start offsets are dropped (the
    stand-in has no notion of the other flows' phases).
    """
    total = sum(flow.encoding_rate_bps for flow in agg.flows)
    return [
        replace(
            flow,
            token_rate_bps=agg.token_rate_bps,
            bucket_depth_bytes=agg.bucket_depth_bytes,
            policer_action=agg.policer_action,
            seed=derive_flow_seed(agg.seed, i),
            cross_traffic_bps=total - flow.encoding_rate_bps,
        )
        for i, flow in enumerate(agg.flows)
    ]


def aggregate_config(agg: AggregateSpec) -> QBoneTestbedConfig:
    """The wide-area path knobs an aggregate implies."""
    return QBoneTestbedConfig(
        token_rate_bps=agg.token_rate_bps,
        bucket_depth_bytes=agg.bucket_depth_bytes,
        policer_action=_policer_action(agg.policer_action),
        cross_traffic_rate_bps=agg.cross_traffic_bps,
    )


class _PerFlowPolicerStats:
    """Trace-sink accumulator: per-flow counters on a shared policer.

    Attaching a trace sink never perturbs the token arithmetic (the
    policer pre-reads the fill, making try_consume's refill a no-op),
    so this observes the shared bucket without changing it.
    """

    def __init__(self, flow_ids: Sequence[str]):
        self.stats = {fid: PolicerStats() for fid in flow_ids}

    def __call__(self, event) -> None:
        stats = self.stats.get(event.flow_id)
        if stats is None:
            return
        if event.verdict == "conform":
            stats.conformant_packets += 1
            stats.conformant_bytes += event.size
        elif event.verdict == "drop":
            stats.dropped_packets += 1
            stats.dropped_bytes += event.size
            if event.frame_id is not None:
                stats.dropped_frame_ids.add(event.frame_id)
        else:  # remark / demote
            stats.remarked_packets += 1


def run_engine_aggregate(
    agg: AggregateSpec, vqm_tool: Optional[VqmTool] = None
) -> AggregateSummary:
    """Discrete-event lane: the bit-checked oracle for aggregates.

    Topology (fan-in over the single-flow QBone path): each flow gets
    its own campus front end — server, tap, campus LAN, jitter element
    replaying that flow's precomputed delay vector — converging on one
    border router. In ``aggregate`` mode the border carries the single
    shared policer; in ``per-flow`` mode each flow passes its own
    policer (same profile) at a per-flow edge router first. Past the
    border, flows share the Abilene chain and are demultiplexed by
    flow id to per-flow client stacks.
    """
    cfg = aggregate_config(agg)
    engine = Engine(seed=agg.seed)
    n = agg.n_flows
    flow_ids = agg.flow_ids()
    encodeds = [
        encode_clip(f.clip, f.codec, f.encoding_rate_bps) for f in agg.flows
    ]

    # Client side: per-flow stacks behind a flow-id demux. Cross
    # traffic (when enabled) exits through the default route.
    demux = Router("demux")
    demux.set_default_route(Host("cross-sink"))
    clients, client_taps = [], []
    for i, flow in enumerate(agg.flows):
        host = Host(f"client{i}")
        tap = FlowTracer(
            engine, sink=host, flow_id=flow_ids[i], name=f"client-tap{i}"
        )
        demux.add_route(flow_ids[i], tap)
        client = PlayoutClient(
            engine,
            encodeds[i],
            startup_delay=flow.startup_delay_s,
            decode_mode=flow.decode_mode,
            buffer_cap_frames=flow.client_buffer_frames,
        )
        host.attach(DatagramReassembler(engine, sink=client))
        clients.append(client)
        client_taps.append(tap)

    # Shared backbone, built back to front (same shape as qbone.py).
    next_sink: object = demux
    for hop in range(cfg.backbone_hops, 0, -1):
        link = Link(
            engine,
            rate_bps=cfg.backbone_rate_bps,
            sink=next_sink,
            queue=PriorityScheduler(),
            propagation_delay=cfg.backbone_hop_delay_s,
            name=f"abilene-{hop}",
        )
        if cfg.cross_traffic_rate_bps > 0:
            PoissonSource(
                engine,
                link,
                rate_bps=cfg.cross_traffic_rate_bps,
                flow_id=f"cross-hop{hop}",
            ).start()
        next_sink = link

    # Border router; in aggregate mode it polices the merged stream.
    border = Router("border")
    shared_policer: Optional[Policer] = None
    if agg.policing == "aggregate":
        shared_policer = Policer(
            engine,
            rate_bps=cfg.token_rate_bps,
            depth_bytes=cfg.bucket_depth_bytes,
            action=cfg.policer_action,
        )
        border.add_ingress_stage(shared_policer)
    for fid in flow_ids:
        border.add_route(fid, next_sink)
    border.set_default_route(next_sink)

    per_flow_stats: dict = {}
    if shared_policer is not None:
        accumulator = _PerFlowPolicerStats(flow_ids)
        shared_policer.set_trace_sink(accumulator)
        per_flow_stats = accumulator.stats

    # Per-flow campus front ends into the border.
    servers, server_taps = [], []
    for i, flow in enumerate(agg.flows):
        first_hop: object = border
        if agg.policing == "per-flow":
            edge = Router(f"edge{i}")
            policer = Policer(
                engine,
                rate_bps=cfg.token_rate_bps,
                depth_bytes=cfg.bucket_depth_bytes,
                action=cfg.policer_action,
            )
            edge.add_ingress_stage(policer)
            edge.set_default_route(border)
            policer.set_drop_listener(clients[i].note_policer_drop)
            per_flow_stats[flow_ids[i]] = policer.stats
            first_hop = edge
        else:
            shared_policer.add_drop_listener(
                clients[i].note_policer_drop, flow_id=flow_ids[i]
            )
        fids, _, _ = message_schedule(encodeds[i])
        delays = flow_jitter_delays(
            derive_flow_seed(agg.seed, i), len(fids), cfg
        )
        jitter = JitterElement(
            engine,
            sink=first_hop,
            base_delay=JITTER_BASE_DELAY_S,
            mean_jitter=cfg.jitter_mean_s,
            max_jitter=cfg.jitter_max_s,
            delays=delays,
        )
        campus = Link(
            engine,
            rate_bps=cfg.campus_lan_rate_bps,
            sink=jitter,
            name=f"remote-campus-lan{i}",
        )
        tap = FlowTracer(
            engine, sink=campus, flow_id=flow_ids[i], name=f"server-tap{i}"
        )
        server = VideoChargerServer(
            engine, encodeds[i], tap, flow_id=flow_ids[i]
        )
        servers.append(server)
        server_taps.append(tap)

    for i, server in enumerate(servers):
        server.start(at=agg.start_offsets[i])
    horizon = max(
        agg.start_offsets[i]
        + encodeds[i].duration_s
        + agg.flows[i].startup_delay_s
        for i in range(n)
    )
    engine.run(until=horizon + RUN_SLACK_S)

    from repro.core.netmetrics import summarize_path

    flow_summaries = []
    for i, flow in enumerate(agg.flows):
        record = clients[i].finalize()
        trace, vqm = assess_playback(flow, record, vqm_tool)
        extras = {
            "server_packets": servers[i].stats.packets_sent,
            "client_packets": getattr(clients[i], "received_packets", 0),
            "network": summarize_path(
                server_taps[i].records, client_taps[i].records
            ),
        }
        result = ExperimentResult(
            spec=flow,
            vqm=vqm,
            lost_frame_fraction=record.lost_frame_fraction,
            policer_stats=per_flow_stats[flow_ids[i]],
            trace=trace,
            client_record=record,
            server_aborted=servers[i].stats.aborted,
            extras=extras,
        )
        flow_summaries.append(ResultSummary.from_result(result))
    return rollup_summaries(flow_summaries)


def run_aggregate(
    agg: AggregateSpec, vqm_tool: Optional[VqmTool] = None
) -> AggregateSummary:
    """Dispatch an aggregate to the fast lane or the engine.

    Mirrors the single-flow fastlane contract: ``REPRO_FLOWPATH``
    selects auto/never/require, and because the lanes are
    bit-identical the choice is invisible to caches and fingerprints.
    """
    from repro.flows import multipath

    if multipath.use_flowpath(agg):
        return multipath.run_multipath(agg, vqm_tool=vqm_tool)
    return run_engine_aggregate(agg, vqm_tool=vqm_tool)
