"""Color-aware AF edge marker.

The AF PHB's edge behaviour (paper §2.1): instead of dropping
non-conformant packets, "it primarily calls for policing actions that
mark packets with different 'colors' (DSCPs) depending on their level
of non-conformance". An :class:`AfMarker` wraps a three-color meter
and stamps AF drop-precedence codepoints; nothing is dropped at the
edge — congestion (the WRED queue) decides downstream.
"""

from __future__ import annotations

from typing import Optional

from repro.diffserv.dscp import DSCP
from repro.diffserv.meters import Color, SrTcmMeter
from repro.diffserv.policer import PolicerStats
from repro.sim.engine import Engine
from repro.sim.packet import Packet

#: AF class-1 codepoints by meter color.
AF1_BY_COLOR = {
    Color.GREEN: DSCP.AF11,
    Color.YELLOW: DSCP.AF12,
    Color.RED: DSCP.AF13,
}


class AfMarker:
    """Ingress stage: meter + color marking (no drops).

    Exposes a :class:`PolicerStats` so experiment plumbing that reads
    drop statistics works unchanged — conformant counts green packets,
    remarked counts yellow+red.
    """

    def __init__(
        self,
        engine: Engine,
        cir_bps: float,
        cbs_bytes: float,
        ebs_bytes: float,
        colors_to_dscp: Optional[dict] = None,
    ):
        self.engine = engine
        self.meter = SrTcmMeter(cir_bps, cbs_bytes, ebs_bytes)
        self.colors_to_dscp = colors_to_dscp or dict(AF1_BY_COLOR)
        self.stats = PolicerStats()
        self._on_drop = None  # parity with Policer wiring
        self._trace = None

    def set_drop_listener(self, listener) -> None:
        """Accept a drop callback for API parity with ``Policer``.

        The marker never drops (it only colors), so the listener is
        simply stored and never fired. When it ever were, it would
        receive a :class:`~repro.diffserv.policer.PolicerDrop` record,
        matching the policer's enriched listener contract.
        """
        self._on_drop = listener

    def set_trace_sink(self, sink) -> None:
        """Accept a per-packet trace tap (parity with ``Policer``).

        Events carry the color verdict (green maps to ``"conform"``,
        yellow/red to ``"remark"``); the token-state fields stay zero
        because the three-color meter has no single fill level.
        """
        self._trace = sink

    def __call__(self, packet: Packet) -> Packet:
        color = self.meter.color(packet.size, self.engine.now)
        dscp_in = packet.dscp
        packet.dscp = int(self.colors_to_dscp[color])
        packet.annotations["af_color"] = color.name.lower()
        if color is Color.GREEN:
            self.stats.conformant_packets += 1
            self.stats.conformant_bytes += packet.size
        else:
            self.stats.remarked_packets += 1
        if self._trace is not None:
            from repro.sim.tracer import PacketTraceEvent

            self._trace(
                PacketTraceEvent(
                    time=self.engine.now,
                    point="policer",
                    packet_id=packet.packet_id,
                    flow_id=packet.flow_id,
                    size=packet.size,
                    frame_id=packet.frame_id,
                    dscp=dscp_in,
                    verdict="conform" if color is Color.GREEN else "remark",
                )
            )
        return packet
