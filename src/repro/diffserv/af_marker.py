"""Color-aware AF edge marker.

The AF PHB's edge behaviour (paper §2.1): instead of dropping
non-conformant packets, "it primarily calls for policing actions that
mark packets with different 'colors' (DSCPs) depending on their level
of non-conformance". An :class:`AfMarker` wraps a three-color meter
and stamps AF drop-precedence codepoints; nothing is dropped at the
edge — congestion (the WRED queue) decides downstream.
"""

from __future__ import annotations

from typing import Optional

from repro.diffserv.dscp import DSCP
from repro.diffserv.meters import Color, SrTcmMeter
from repro.diffserv.policer import PolicerStats
from repro.sim.engine import Engine
from repro.sim.packet import Packet

#: AF class-1 codepoints by meter color.
AF1_BY_COLOR = {
    Color.GREEN: DSCP.AF11,
    Color.YELLOW: DSCP.AF12,
    Color.RED: DSCP.AF13,
}


class AfMarker:
    """Ingress stage: meter + color marking (no drops).

    Exposes a :class:`PolicerStats` so experiment plumbing that reads
    drop statistics works unchanged — conformant counts green packets,
    remarked counts yellow+red.
    """

    def __init__(
        self,
        engine: Engine,
        cir_bps: float,
        cbs_bytes: float,
        ebs_bytes: float,
        colors_to_dscp: Optional[dict] = None,
    ):
        self.engine = engine
        self.meter = SrTcmMeter(cir_bps, cbs_bytes, ebs_bytes)
        self.colors_to_dscp = colors_to_dscp or dict(AF1_BY_COLOR)
        self.stats = PolicerStats()
        self._on_drop = None  # parity with Policer wiring

    def set_drop_listener(self, listener) -> None:
        """Accept a drop callback for API parity with ``Policer``.

        The marker never drops (it only colors), so the listener is
        simply stored and never fired.
        """
        self._on_drop = listener

    def __call__(self, packet: Packet) -> Packet:
        color = self.meter.color(packet.size, self.engine.now)
        packet.dscp = int(self.colors_to_dscp[color])
        packet.annotations["af_color"] = color.name.lower()
        if color is Color.GREEN:
            self.stats.conformant_packets += 1
            self.stats.conformant_bytes += packet.size
        else:
            self.stats.remarked_packets += 1
        return packet
