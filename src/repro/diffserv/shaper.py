"""Token-bucket shaper.

"A shaper is a token bucket, which instead of simply dropping
(policing) non-conformant packets, is configured to delay them until
the earliest time at which they are deemed conformant." (paper, §3.2)

The local testbed placed a Linux box running such a shaper in front of
the policing router to tame the bursty WMT server output. The shaper
holds non-conformant packets in a bounded FIFO and releases them at
token-arrival times, preserving order.
"""

from __future__ import annotations

from typing import Optional

from repro.diffserv.token_bucket import TokenBucket
from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink
from repro.sim.queues import DropTailQueue


class Shaper:
    """Delay-based traffic conditioner.

    Parameters
    ----------
    engine:
        Event engine (release times are scheduled on it).
    rate_bps / depth_bytes:
        Shaping profile. With ``depth_bytes`` of one MTU this is a pure
        leaky-bucket pacer.
    sink:
        Downstream receiver of (now conformant) packets.
    max_queue_packets:
        Backlog bound; packets arriving to a full shaper queue are
        dropped (counted in ``queue.dropped_packets``).
    """

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        depth_bytes: float,
        sink: Optional[PacketSink] = None,
        max_queue_packets: int = 2000,
        name: str = "shaper",
    ):
        self.engine = engine
        self.bucket = TokenBucket(rate_bps, depth_bytes)
        self.queue = DropTailQueue(max_packets=max_queue_packets)
        self.name = name
        self._sink = sink
        self._release_pending = False
        self.released_packets = 0

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    @property
    def backlog(self) -> int:
        """Packets currently waiting for tokens."""
        return len(self.queue)

    def receive(self, packet: Packet) -> None:
        """Accept a packet; forward immediately if conformant, else queue."""
        now = self.engine.now
        if self.backlog == 0 and self.bucket.try_consume(packet.size, now):
            self._deliver(packet)
            return
        self.queue.enqueue(packet)
        self._schedule_release()

    def _deliver(self, packet: Packet) -> None:
        if self._sink is None:
            raise RuntimeError(f"{self.name}: not connected")
        self.released_packets += 1
        self._sink.receive(packet)

    def _schedule_release(self) -> None:
        if self._release_pending:
            return
        head = self.queue.peek()
        if head is None:
            return
        wait = self.bucket.time_until_conformant(head.size, self.engine.now)
        # Tiny epsilon so a downstream policer with the *same* profile,
        # whose refill arithmetic differs by float rounding, never sees
        # the packet a hair before its tokens exist.
        wait += 1e-7
        if wait == float("inf"):
            # The packet can never conform (bigger than the bucket).
            # Drop it rather than deadlocking the queue.
            self.queue.dequeue()
            self.queue.dropped_packets += 1
            self._schedule_release()
            return
        self._release_pending = True
        self.engine.schedule(wait, self._release_head)

    def _release_head(self) -> None:
        self._release_pending = False
        packet = self.queue.dequeue()
        if packet is None:
            return
        self.bucket.force_consume(packet.size, self.engine.now)
        self._deliver(packet)
        self._schedule_release()
