"""Edge policers.

The policer is an ingress stage: conformant packets are marked with a
DSCP (EF in all the paper's experiments) and passed on; non-conformant
packets are handled according to the configured
:class:`PolicerAction` — dropped (the paper's EF configuration),
re-marked to best effort, or demoted to a lower AF color.

This models both the policy component of the local testbed's router 1
and the Cisco CAR configuration at the QBone ingress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.diffserv.dscp import DSCP
from repro.diffserv.token_bucket import TokenBucket
from repro.sim.engine import Engine
from repro.sim.packet import Packet


class PolicerAction(enum.Enum):
    """What happens to a non-conformant packet."""

    DROP = "drop"
    REMARK_BE = "remark-be"
    DEMOTE = "demote"  # AF-style coloring to a configurable codepoint


@dataclass
class PolicerStats:
    """Counters the experiments read after a run."""

    conformant_packets: int = 0
    conformant_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    remarked_packets: int = 0
    dropped_frame_ids: set = field(default_factory=set)

    @property
    def total_packets(self) -> int:
        """Total packets processed."""
        return self.conformant_packets + self.dropped_packets + self.remarked_packets

    @property
    def drop_fraction(self) -> float:
        """Dropped / total packets (0 when idle)."""
        total = self.total_packets
        return self.dropped_packets / total if total else 0.0


class Policer:
    """Token-bucket policer usable as a router ingress stage.

    Parameters
    ----------
    engine:
        Supplies arrival timestamps for the token arithmetic.
    rate_bps / depth_bytes:
        Token bucket profile (the paper's "service parameters").
    action:
        Treatment of non-conformant packets.
    conform_dscp:
        Codepoint applied to conformant packets (EF by default).
    demote_dscp:
        Codepoint for :attr:`PolicerAction.DEMOTE`.
    on_drop:
        Optional callback fired with each dropped packet, used by
        experiments to attribute frame loss to the policer.
    """

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        depth_bytes: float,
        action: PolicerAction = PolicerAction.DROP,
        conform_dscp: DSCP = DSCP.EF,
        demote_dscp: DSCP = DSCP.AF12,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ):
        self.engine = engine
        self.bucket = TokenBucket(rate_bps, depth_bytes)
        self.action = action
        self.conform_dscp = conform_dscp
        self.demote_dscp = demote_dscp
        self.stats = PolicerStats()
        self._on_drop = on_drop

    def set_drop_listener(
        self, listener: Optional[Callable[[Packet], None]]
    ) -> None:
        """Install (or clear, with None) the drop callback after the fact.

        Experiments wire the client's loss-attribution hook here once
        the testbed and client both exist; constructing the policer
        with ``on_drop`` is equivalent.
        """
        self._on_drop = listener

    def __call__(self, packet: Packet) -> Optional[Packet]:
        """Ingress-stage interface: return the packet or None if dropped."""
        now = self.engine.now
        if self.bucket.try_consume(packet.size, now):
            self.stats.conformant_packets += 1
            self.stats.conformant_bytes += packet.size
            packet.dscp = int(self.conform_dscp)
            return packet
        if self.action is PolicerAction.DROP:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            if packet.frame_id is not None:
                self.stats.dropped_frame_ids.add(packet.frame_id)
            if self._on_drop is not None:
                self._on_drop(packet)
            return None
        if self.action is PolicerAction.REMARK_BE:
            self.stats.remarked_packets += 1
            packet.dscp = int(DSCP.BE)
            return packet
        # PolicerAction.DEMOTE
        self.stats.remarked_packets += 1
        packet.dscp = int(self.demote_dscp)
        return packet
