"""Edge policers.

The policer is an ingress stage: conformant packets are marked with a
DSCP (EF in all the paper's experiments) and passed on; non-conformant
packets are handled according to the configured
:class:`PolicerAction` — dropped (the paper's EF configuration),
re-marked to best effort, or demoted to a lower AF color.

This models both the policy component of the local testbed's router 1
and the Cisco CAR configuration at the QBone ingress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.diffserv.dscp import DSCP
from repro.diffserv.token_bucket import TokenBucket
from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.sim.tracer import PacketTraceEvent


class PolicerAction(enum.Enum):
    """What happens to a non-conformant packet."""

    DROP = "drop"
    REMARK_BE = "remark-be"
    DEMOTE = "demote"  # AF-style coloring to a configurable codepoint


#: Stable drop-reason taxonomy. These strings appear in drop records,
#: trace payloads, and journals alike, so the detection subsystem and
#: the chaos/journal layers classify the same event the same way.
DROP_REASON_TOKENS = "tokens-exhausted"  # bucket momentarily empty
DROP_REASON_OVERSIZE = "oversize-packet"  # larger than the bucket depth


@dataclass(frozen=True)
class PolicerDrop:
    """One non-conformant discard, with the bucket state that caused it.

    Drop listeners receive this record instead of the bare packet so
    downstream consumers (loss attribution, detection validation,
    journals) see the full taxonomy: why the packet died, what it was
    marked, and how short of tokens it was.
    """

    packet: Packet
    time: float
    reason: str  # DROP_REASON_TOKENS | DROP_REASON_OVERSIZE
    dscp: Optional[int]  # codepoint on arrival, before any restamping
    token_deficit: float  # tokens the packet was short by (> 0)
    bucket_fill: float  # tokens available at the drop instant

    @property
    def flow_id(self) -> Optional[str]:
        """Owning flow of the discarded packet.

        Multi-flow aggregates share one policer across tagged flows;
        surfacing the flow id on the record lets per-flow consumers
        (loss attribution, admission probes) filter without reaching
        into the packet.
        """
        return self.packet.flow_id


@dataclass
class PolicerStats:
    """Counters the experiments read after a run."""

    conformant_packets: int = 0
    conformant_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    remarked_packets: int = 0
    dropped_frame_ids: set = field(default_factory=set)

    @property
    def total_packets(self) -> int:
        """Total packets processed."""
        return self.conformant_packets + self.dropped_packets + self.remarked_packets

    @property
    def drop_fraction(self) -> float:
        """Dropped / total packets (0 when idle)."""
        total = self.total_packets
        return self.dropped_packets / total if total else 0.0


class Policer:
    """Token-bucket policer usable as a router ingress stage.

    Parameters
    ----------
    engine:
        Supplies arrival timestamps for the token arithmetic.
    rate_bps / depth_bytes:
        Token bucket profile (the paper's "service parameters").
    action:
        Treatment of non-conformant packets.
    conform_dscp:
        Codepoint applied to conformant packets (EF by default).
    demote_dscp:
        Codepoint for :attr:`PolicerAction.DEMOTE`.
    on_drop:
        Optional callback fired with a :class:`PolicerDrop` record for
        each dropped packet, used by experiments to attribute frame
        loss to the policer.
    """

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        depth_bytes: float,
        action: PolicerAction = PolicerAction.DROP,
        conform_dscp: DSCP = DSCP.EF,
        demote_dscp: DSCP = DSCP.AF12,
        on_drop: Optional[Callable[[PolicerDrop], None]] = None,
    ):
        self.engine = engine
        self.bucket = TokenBucket(rate_bps, depth_bytes)
        self.action = action
        self.conform_dscp = conform_dscp
        self.demote_dscp = demote_dscp
        self.stats = PolicerStats()
        self._on_drop = on_drop
        self._drop_listeners: list[
            tuple[Optional[str], Callable[[PolicerDrop], None]]
        ] = []
        self._trace: Optional[Callable[[PacketTraceEvent], None]] = None

    def set_drop_listener(
        self, listener: Optional[Callable[[PolicerDrop], None]]
    ) -> None:
        """Install (or clear, with None) the drop callback after the fact.

        Experiments wire the client's loss-attribution hook here once
        the testbed and client both exist; constructing the policer
        with ``on_drop`` is equivalent.
        """
        self._on_drop = listener

    def add_drop_listener(
        self,
        listener: Callable[[PolicerDrop], None],
        flow_id: Optional[str] = None,
    ) -> None:
        """Register an additional drop callback, optionally flow-filtered.

        Unlike :meth:`set_drop_listener` (a single slot, kept for the
        single-flow experiments), added listeners accumulate: a shared
        aggregate policer carries one per flow. With ``flow_id`` set,
        the listener fires only for drops whose packet belongs to that
        flow — how each flow's client attributes its own losses on a
        bucket it shares with N-1 neighbours.
        """
        self._drop_listeners.append((flow_id, listener))

    def clear_drop_listeners(self) -> None:
        """Remove every listener added via :meth:`add_drop_listener`."""
        self._drop_listeners.clear()

    def set_trace_sink(
        self, sink: Optional[Callable[[PacketTraceEvent], None]]
    ) -> None:
        """Install (or clear) a per-packet trace tap.

        With a sink installed, every packet produces one
        :class:`~repro.sim.tracer.PacketTraceEvent` at point
        ``"policer"`` carrying the verdict and the token state at the
        decision instant. The off path costs nothing extra.
        """
        self._trace = sink

    def _drop_reason(self, packet: Packet) -> str:
        if packet.size > self.bucket.depth_bytes:
            return DROP_REASON_OVERSIZE
        return DROP_REASON_TOKENS

    def __call__(self, packet: Packet) -> Optional[Packet]:
        """Ingress-stage interface: return the packet or None if dropped."""
        now = self.engine.now
        dscp_in = packet.dscp
        # Pre-reading the fill refills the bucket at ``now``; the
        # subsequent try_consume refill is then a no-op, so the token
        # arithmetic is bit-identical with tracing on or off.
        fill = self.bucket.tokens_at(now) if self._trace is not None else None
        if self.bucket.try_consume(packet.size, now):
            self.stats.conformant_packets += 1
            self.stats.conformant_bytes += packet.size
            packet.dscp = int(self.conform_dscp)
            if self._trace is not None:
                self._trace(
                    self._trace_event(packet, now, dscp_in, "conform", fill)
                )
            return packet
        if fill is None and (
            self._on_drop is not None
            or self._drop_listeners
            or self._trace is not None
        ):
            # try_consume already refilled at ``now``; this only reads.
            fill = self.bucket.tokens_at(now)
        if self.action is PolicerAction.DROP:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            if packet.frame_id is not None:
                self.stats.dropped_frame_ids.add(packet.frame_id)
            if self._trace is not None:
                self._trace(
                    self._trace_event(packet, now, dscp_in, "drop", fill)
                )
            if self._on_drop is not None or self._drop_listeners:
                drop = PolicerDrop(
                    packet=packet,
                    time=now,
                    reason=self._drop_reason(packet),
                    dscp=dscp_in,
                    token_deficit=packet.size - fill,
                    bucket_fill=fill,
                )
                if self._on_drop is not None:
                    self._on_drop(drop)
                for want_flow, listener in self._drop_listeners:
                    if want_flow is None or want_flow == packet.flow_id:
                        listener(drop)
            return None
        if self.action is PolicerAction.REMARK_BE:
            self.stats.remarked_packets += 1
            packet.dscp = int(DSCP.BE)
        else:  # PolicerAction.DEMOTE
            self.stats.remarked_packets += 1
            packet.dscp = int(self.demote_dscp)
        if self._trace is not None:
            self._trace(self._trace_event(packet, now, dscp_in, "remark", fill))
        return packet

    def _trace_event(
        self,
        packet: Packet,
        now: float,
        dscp_in: Optional[int],
        verdict: str,
        fill: float,
    ) -> PacketTraceEvent:
        return PacketTraceEvent(
            time=now,
            point="policer",
            packet_id=packet.packet_id,
            flow_id=packet.flow_id,
            size=packet.size,
            frame_id=packet.frame_id,
            dscp=dscp_in,
            verdict=verdict,
            drop_reason=self._drop_reason(packet) if verdict == "drop" else None,
            token_deficit=packet.size - fill if verdict != "conform" else 0.0,
            bucket_fill=fill,
        )
