"""Multi-field classification.

At router 1 of the local testbed "the profile specifies the source
address of the video server and the destination address of the video
client, which will then trigger the creation of a classifier entry at
the router to extract the corresponding set of packets."

Our packets carry a ``flow_id`` standing in for the (src, dst) address
pair, so a :class:`FlowProfile` matches on flow id (and optionally on
an already-present DSCP, which is how interior routers classify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.packet import Packet


@dataclass(frozen=True)
class FlowProfile:
    """Match criteria for one classifier entry.

    ``None`` fields are wildcards. ``flow_id`` models the src/dst
    address pair; ``dscp`` matches a codepoint already on the packet.
    """

    flow_id: Optional[str] = None
    dscp: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        """Whether the packet matches this profile."""
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        if self.dscp is not None and packet.dscp != self.dscp:
            return False
        return True


class MultiFieldClassifier:
    """Ordered list of (profile, stage) entries.

    Used as a router ingress stage: the first matching profile's stage
    processes the packet; non-matching packets pass through untouched
    (best-effort treatment).
    """

    def __init__(self) -> None:
        self._entries: list[tuple[FlowProfile, Callable[[Packet], Optional[Packet]]]] = []
        self.matched_packets = 0
        self.unmatched_packets = 0

    def add_entry(
        self,
        profile: FlowProfile,
        stage: Callable[[Packet], Optional[Packet]],
    ) -> None:
        """Append a classification entry (first match wins)."""
        self._entries.append((profile, stage))

    def __call__(self, packet: Packet) -> Optional[Packet]:
        for profile, stage in self._entries:
            if profile.matches(packet):
                self.matched_packets += 1
                return stage(packet)
        self.unmatched_packets += 1
        return packet
