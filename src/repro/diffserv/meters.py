"""Two- and three-color traffic meters (RFC 2697 / RFC 2698).

The paper's AF experiments need color-aware policing: instead of
dropping non-conformant packets, the meter marks them with a higher
drop precedence and lets congestion decide. Two standard meters are
implemented:

* :class:`SrTcmMeter` — single-rate three color marker (RFC 2697):
  one token rate (CIR) with committed (CBS) and excess (EBS) buckets;
  green within CBS, yellow within EBS, red beyond.
* :class:`TrTcmMeter` — two-rate three color marker (RFC 2698):
  committed (CIR/CBS) and peak (PIR/PBS) buckets; red above peak,
  yellow above committed, green otherwise.

Both operate in color-blind mode (every packet arrives uncolored),
which matches a first-hop ingress meter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.diffserv.token_bucket import TokenBucket


class Color(enum.Enum):
    """Meter verdicts, ordered by increasing drop precedence."""

    GREEN = 1
    YELLOW = 2
    RED = 3


@dataclass
class MeterStats:
    green_packets: int = 0
    yellow_packets: int = 0
    red_packets: int = 0

    def count(self, color: Color) -> None:
        """Record one metered packet of the given color."""
        if color is Color.GREEN:
            self.green_packets += 1
        elif color is Color.YELLOW:
            self.yellow_packets += 1
        else:
            self.red_packets += 1

    @property
    def total_packets(self) -> int:
        """Total packets processed."""
        return self.green_packets + self.yellow_packets + self.red_packets


class SrTcmMeter:
    """Single-rate three color marker (RFC 2697, color-blind).

    Both buckets refill from the same CIR: the committed bucket first,
    overflow tokens spilling into the excess bucket — implemented here
    as two buckets whose combined refill never exceeds CIR.
    """

    def __init__(self, cir_bps: float, cbs_bytes: float, ebs_bytes: float):
        if ebs_bytes < 0:
            raise ValueError("EBS cannot be negative")
        self.cir_bps = cir_bps
        self._committed = TokenBucket(cir_bps, cbs_bytes)
        # The excess bucket only fills when the committed one is full;
        # we approximate the RFC's coupled refill by refilling the
        # excess bucket at CIR but draining it for yellow traffic only.
        self._excess = (
            TokenBucket(cir_bps, ebs_bytes) if ebs_bytes > 0 else None
        )
        self.stats = MeterStats()

    def color(self, size_bytes: int, now: float) -> Color:
        """Meter one packet and consume the matching tokens."""
        if self._committed.try_consume(size_bytes, now):
            verdict = Color.GREEN
        elif self._excess is not None and self._excess.try_consume(
            size_bytes, now
        ):
            verdict = Color.YELLOW
        else:
            verdict = Color.RED
        self.stats.count(verdict)
        return verdict


class TrTcmMeter:
    """Two-rate three color marker (RFC 2698, color-blind)."""

    def __init__(
        self,
        cir_bps: float,
        cbs_bytes: float,
        pir_bps: float,
        pbs_bytes: float,
    ):
        if pir_bps < cir_bps:
            raise ValueError("PIR must be at least CIR")
        self._committed = TokenBucket(cir_bps, cbs_bytes)
        self._peak = TokenBucket(pir_bps, pbs_bytes)
        self.stats = MeterStats()

    def color(self, size_bytes: int, now: float) -> Color:
        """Meter one packet (RFC 2698 order: peak test first)."""
        if not self._peak.conforms(size_bytes, now):
            # Tokens refresh lazily inside conforms(); red consumes
            # nothing from either bucket.
            self.stats.count(Color.RED)
            return Color.RED
        self._peak.force_consume(size_bytes, now)
        if self._committed.try_consume(size_bytes, now):
            self.stats.count(Color.GREEN)
            return Color.GREEN
        self.stats.count(Color.YELLOW)
        return Color.YELLOW
