"""Weighted RED queue for the AF PHB.

The Assured Forwarding PHB needs a queue that discriminates by drop
precedence: under congestion, packets colored with higher precedence
(AFx2/AFx3 — yellow/red) are discarded earlier than committed (green)
traffic. This is a standard WRED implementation: per-precedence
(min_threshold, max_threshold, max_probability) profiles applied to an
EWMA of the queue occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.diffserv.dscp import DSCP
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


@dataclass(frozen=True)
class RedProfile:
    """One precedence class's drop curve (thresholds in packets)."""

    min_threshold: float
    max_threshold: float
    max_probability: float

    def __post_init__(self) -> None:
        if not 0 <= self.min_threshold < self.max_threshold:
            raise ValueError("need 0 <= min < max threshold")
        if not 0.0 < self.max_probability <= 1.0:
            raise ValueError("max probability must be in (0, 1]")

    def drop_probability(self, avg_queue: float) -> float:
        """RED drop curve: 0 below min, ramp to max_p, then 1."""
        if avg_queue < self.min_threshold:
            return 0.0
        if avg_queue >= self.max_threshold:
            return 1.0
        span = self.max_threshold - self.min_threshold
        return self.max_probability * (avg_queue - self.min_threshold) / span


#: Default WRED profiles per AF drop precedence (1 = committed).
DEFAULT_PROFILES = {
    1: RedProfile(min_threshold=40, max_threshold=80, max_probability=0.05),
    2: RedProfile(min_threshold=20, max_threshold=60, max_probability=0.2),
    3: RedProfile(min_threshold=5, max_threshold=30, max_probability=0.5),
}


def af_precedence_of(packet: Packet) -> int:
    """Drop precedence for WRED purposes.

    AF codepoints expose their precedence bits; unmarked (best effort)
    traffic is treated as the most droppable class.
    """
    if packet.dscp is None or packet.dscp == int(DSCP.BE):
        return 3
    try:
        from repro.diffserv.dscp import af_drop_precedence

        return af_drop_precedence(packet.dscp)
    except ValueError:
        return 1  # EF or unknown premium marking: protect it


class WredQueue(DropTailQueue):
    """Drop-tail queue with WRED early discard by AF precedence.

    Drop decisions use a deterministic per-queue random stream so runs
    stay reproducible; pass ``rng`` to control it.
    """

    def __init__(
        self,
        max_packets: int = 120,
        profiles: Optional[dict] = None,
        ewma_weight: float = 0.1,
        rng: Optional[np.random.Generator] = None,
        classify: Callable[[Packet], int] = af_precedence_of,
    ):
        super().__init__(max_packets=max_packets)
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError("ewma weight must be in (0, 1]")
        self.profiles = profiles or dict(DEFAULT_PROFILES)
        self.ewma_weight = ewma_weight
        self._rng = rng if rng is not None else np.random.default_rng(1234)
        self._classify = classify
        self._avg_queue = 0.0
        self.early_drops = {1: 0, 2: 0, 3: 0}

    @property
    def average_queue(self) -> float:
        """Current EWMA of the queue occupancy (packets)."""
        return self._avg_queue

    def enqueue(self, packet: Packet) -> bool:
        """Enqueue with WRED early-drop applied first."""
        self._avg_queue = (
            (1.0 - self.ewma_weight) * self._avg_queue
            + self.ewma_weight * len(self)
        )
        precedence = self._classify(packet)
        profile = self.profiles.get(precedence)
        if profile is not None:
            p_drop = profile.drop_probability(self._avg_queue)
            if p_drop > 0.0 and self._rng.random() < p_drop:
                self.early_drops[precedence] += 1
                self.dropped_packets += 1
                self.dropped_bytes += packet.size
                return False
        return super().enqueue(packet)
