"""Differentiated Services edge and core components.

Implements the machinery of RFC 2474/2475 that the paper exercises:
DSCP codepoints (`dscp`), the token bucket (`token_bucket`), edge
policers and shapers (`policer`, `shaper`), multi-field classification
and marking (`classifier`, `marker`), strict-priority scheduling
(`scheduler`) and the frame-relay interface model of the local testbed
(`frame_relay`).
"""

from repro.diffserv.dscp import DSCP, EF, BE, AF11, AF12, AF13, phb_name
from repro.diffserv.token_bucket import TokenBucket
from repro.diffserv.policer import Policer, PolicerAction, PolicerStats
from repro.diffserv.shaper import Shaper
from repro.diffserv.classifier import FlowProfile, MultiFieldClassifier
from repro.diffserv.marker import Marker
from repro.diffserv.scheduler import PriorityScheduler
from repro.diffserv.frame_relay import FrameRelayInterface, FrameRelayConfig
from repro.diffserv.meters import Color, SrTcmMeter, TrTcmMeter, MeterStats
from repro.diffserv.red import RedProfile, WredQueue
from repro.diffserv.af_marker import AfMarker

__all__ = [
    "DSCP",
    "EF",
    "BE",
    "AF11",
    "AF12",
    "AF13",
    "phb_name",
    "TokenBucket",
    "Policer",
    "PolicerAction",
    "PolicerStats",
    "Shaper",
    "FlowProfile",
    "MultiFieldClassifier",
    "Marker",
    "PriorityScheduler",
    "FrameRelayInterface",
    "FrameRelayConfig",
    "Color",
    "SrTcmMeter",
    "TrTcmMeter",
    "MeterStats",
    "RedProfile",
    "WredQueue",
    "AfMarker",
]
