"""Frame relay interface model (Table 1 of the paper).

The local testbed connected its routers with frame relay circuits
configured by three parameters: Committed Information Rate (CIR),
Committed Burst Size (Bc), and Excess Burst Size (Be). With Be = 0 and
Bc/CIR = 1 s, "the main purpose of the configurations used was to
emulate a set of constant rate links" — so the interface behaves as a
CIR-rate serial link whose short-term credit is bounded by Bc.

We model the interface as a token-bucket-shaped serial link: traffic is
serialized at the access rate but only admitted at CIR on average, with
a credit window of Bc (+ Be) bits. With the paper's settings this
degenerates to a constant-rate link, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.diffserv.shaper import Shaper
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.packet import PacketSink
from repro.sim.queues import DropTailQueue, PriorityQueueSet


@dataclass(frozen=True)
class FrameRelayConfig:
    """One row of the paper's Table 1.

    Rates/bursts are in bits (per second for CIR), matching how frame
    relay gear is configured.
    """

    cir_bps: float
    bc_bits: float
    be_bits: float
    interface_type: str  # "V.35" or "HSSI"
    access_rate_bps: Optional[float] = None

    #: Physical ceilings per interface type; V.35 tops out around E1
    #: ("the main bandwidth bottleneck of the system"), HSSI at 52 Mbps.
    INTERFACE_MAX_RATES = {"V.35": 2.048e6, "HSSI": 52e6}

    def __post_init__(self) -> None:
        if self.cir_bps <= 0:
            raise ValueError("CIR must be positive")
        if self.bc_bits <= 0:
            raise ValueError("Bc must be positive")
        if self.be_bits < 0:
            raise ValueError("Be cannot be negative")
        max_rate = self.INTERFACE_MAX_RATES.get(self.interface_type)
        if max_rate is None:
            raise ValueError(f"unknown interface type {self.interface_type!r}")
        if self.cir_bps > max_rate:
            raise ValueError(
                f"CIR {self.cir_bps} exceeds {self.interface_type} "
                f"maximum {max_rate}"
            )

    @property
    def committed_interval_s(self) -> float:
        """Tc = Bc / CIR, the credit measurement interval."""
        return self.bc_bits / self.cir_bps

    @property
    def physical_rate_bps(self) -> float:
        """Access (serialization) rate of the interface."""
        if self.access_rate_bps is not None:
            return self.access_rate_bps
        return self.INTERFACE_MAX_RATES[self.interface_type]


#: The three interfaces of Table 1: CIR = Bc = 2e6, Be = 0.
TABLE1_CONFIGS = {
    ("router1", "FR0"): FrameRelayConfig(2e6, 2e6, 0, "V.35"),
    ("router2", "FR1"): FrameRelayConfig(2e6, 2e6, 0, "HSSI"),
    ("router3", "FR0"): FrameRelayConfig(2e6, 2e6, 0, "V.35"),
}


class FrameRelayInterface:
    """CIR-enforced output interface.

    Composition: a CIR+Bc(+Be) token-bucket shaper feeding a serial
    link at the physical access rate. Packets therefore leave at line
    rate but no faster than CIR on average — the behaviour frame relay
    access gear exhibits.
    """

    def __init__(
        self,
        engine: Engine,
        config: FrameRelayConfig,
        sink: Optional[PacketSink] = None,
        queue: Optional[Union[DropTailQueue, PriorityQueueSet]] = None,
        propagation_delay: float = 0.0,
        name: str = "fr-if",
    ):
        self.engine = engine
        self.config = config
        self.name = name
        self.link = Link(
            engine,
            rate_bps=config.physical_rate_bps,
            queue=queue,
            propagation_delay=propagation_delay,
            name=f"{name}.link",
        )
        depth_bytes = (config.bc_bits + config.be_bits) / 8.0
        self.shaper = Shaper(
            engine,
            rate_bps=config.cir_bps,
            depth_bytes=depth_bytes,
            sink=self.link,
            name=f"{name}.shaper",
        )
        if sink is not None:
            self.connect(sink)

    def connect(self, sink: PacketSink) -> None:
        """Attach (or replace) the downstream receiver."""
        self.link.connect(sink)

    def receive(self, packet) -> None:
        """Accept a packet (PacketSink interface)."""
        self.shaper.receive(packet)

    @property
    def transmitted_packets(self) -> int:
        """Packets that left the interface so far."""
        return self.link.transmitted_packets
