"""DiffServ codepoints (RFC 2474, RFC 2597, RFC 3246).

The paper configures its policers to mark conformant packets with the
EF DSCP and forward them to the routers' high-priority queues. We
reproduce the standard codepoint values; note the paper's text quotes
"101100" for EF, but RFC 3246 (and its predecessor RFC 2598, current at
the time) define EF as 101110 — we use the RFC value and note the
discrepancy here rather than silently diverging from the standard.
"""

from __future__ import annotations

from enum import IntEnum


class DSCP(IntEnum):
    """Standard DiffServ codepoint values (6-bit field)."""

    BE = 0b000000  # best effort / default PHB
    EF = 0b101110  # expedited forwarding (RFC 3246)
    AF11 = 0b001010
    AF12 = 0b001100
    AF13 = 0b001110
    AF21 = 0b010010
    AF22 = 0b010100
    AF23 = 0b010110
    AF31 = 0b011010
    AF32 = 0b011100
    AF33 = 0b011110
    AF41 = 0b100010
    AF42 = 0b100100
    AF43 = 0b100110


# Convenience aliases used throughout the library.
EF = DSCP.EF
BE = DSCP.BE
AF11 = DSCP.AF11
AF12 = DSCP.AF12
AF13 = DSCP.AF13

_PHB_NAMES = {
    DSCP.BE: "Default",
    DSCP.EF: "Expedited Forwarding",
    DSCP.AF11: "Assured Forwarding class 1, low drop",
    DSCP.AF12: "Assured Forwarding class 1, medium drop",
    DSCP.AF13: "Assured Forwarding class 1, high drop",
    DSCP.AF21: "Assured Forwarding class 2, low drop",
    DSCP.AF22: "Assured Forwarding class 2, medium drop",
    DSCP.AF23: "Assured Forwarding class 2, high drop",
    DSCP.AF31: "Assured Forwarding class 3, low drop",
    DSCP.AF32: "Assured Forwarding class 3, medium drop",
    DSCP.AF33: "Assured Forwarding class 3, high drop",
    DSCP.AF41: "Assured Forwarding class 4, low drop",
    DSCP.AF42: "Assured Forwarding class 4, medium drop",
    DSCP.AF43: "Assured Forwarding class 4, high drop",
}


def phb_name(dscp: int) -> str:
    """Human-readable PHB name for a codepoint value."""
    try:
        return _PHB_NAMES[DSCP(dscp)]
    except ValueError:
        return f"Unknown DSCP {dscp:#08b}"


def is_ef(dscp: int | None) -> bool:
    """True when the codepoint selects the EF PHB."""
    return dscp == DSCP.EF


def af_drop_precedence(dscp: int) -> int:
    """Drop precedence (1..3) of an AF codepoint.

    Raises ``ValueError`` for non-AF codepoints.
    """
    code = DSCP(dscp)
    if code in (DSCP.BE, DSCP.EF):
        raise ValueError(f"{code.name} is not an AF codepoint")
    return (int(code) >> 1) & 0b11
