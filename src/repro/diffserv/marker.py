"""DSCP markers.

A marker unconditionally stamps packets with a codepoint. The QBone
experiments used one at the video server itself: "The packets generated
by the server were pre-marked as EF packets by the server and were
policed at the border Cisco router of the remote site."
"""

from __future__ import annotations

from typing import Optional

from repro.diffserv.dscp import DSCP
from repro.sim.packet import Packet


class Marker:
    """Stamp every passing packet with a fixed DSCP.

    Usable both as a router ingress stage (callable) and as an inline
    sink in a component chain (``receive``/``connect``).
    """

    def __init__(self, dscp: DSCP = DSCP.EF):
        self.dscp = dscp
        self.marked_packets = 0
        self._sink = None

    def connect(self, sink) -> None:
        """Attach (or replace) the downstream receiver."""
        self._sink = sink

    def __call__(self, packet: Packet) -> Optional[Packet]:
        packet.dscp = int(self.dscp)
        self.marked_packets += 1
        return packet

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        self(packet)
        if self._sink is not None:
            self._sink.receive(packet)
