"""The token bucket: the paper's central control knob.

Tokens are credits to transmit bytes (the convention of RFC 2212/2697/
2698, which the paper adopts). The bucket fills continuously at
``rate_bps / 8`` bytes per second up to ``depth_bytes``; a packet of
``n`` bytes is conformant iff ``n`` tokens are available at its arrival
instant, in which case they are consumed.

The implementation is lazy: tokens are topped up on demand from the
elapsed time, so no periodic refill events load the engine.
"""

from __future__ import annotations


class TokenBucket:
    """Byte-denominated token bucket.

    Parameters
    ----------
    rate_bps:
        Token generation rate in **bits** per second (matching how the
        paper quotes token rates).
    depth_bytes:
        Bucket capacity in bytes. The paper uses 3000 (two Ethernet
        MTUs) and 4500 (three MTUs).
    start_full:
        Whether the bucket starts full (the usual convention; matches
        router behaviour after an idle period).
    """

    def __init__(self, rate_bps: float, depth_bytes: float, start_full: bool = True):
        if rate_bps <= 0:
            raise ValueError(f"token rate must be positive, got {rate_bps}")
        if depth_bytes <= 0:
            raise ValueError(f"bucket depth must be positive, got {depth_bytes}")
        self.rate_bps = rate_bps
        self.depth_bytes = float(depth_bytes)
        self._tokens = self.depth_bytes if start_full else 0.0
        self._last_update = 0.0

    @property
    def rate_bytes_per_s(self) -> float:
        """Token rate converted to bytes per second."""
        return self.rate_bps / 8.0

    def tokens_at(self, now: float) -> float:
        """Token level at time ``now`` without consuming anything."""
        self._refill(now)
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError(
                f"time went backwards: {now} < {self._last_update}"
            )
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(
                self.depth_bytes, self._tokens + elapsed * self.rate_bytes_per_s
            )
            self._last_update = now

    def conforms(self, size_bytes: int, now: float) -> bool:
        """Check conformance without consuming tokens."""
        self._refill(now)
        return self._tokens >= size_bytes

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Consume tokens for a conformant packet; False if non-conformant.

        A packet larger than the bucket depth can never conform — the
        paper leans on exactly this: with a 3000-byte bucket, a burst of
        three 1500-byte packets always loses its third packet.
        """
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def time_until_conformant(self, size_bytes: int, now: float) -> float:
        """Seconds until ``size_bytes`` tokens will have accumulated.

        Used by the shaper to schedule delayed release. Returns 0 when
        already conformant and ``inf`` when the packet exceeds the
        bucket depth (it will never conform).
        """
        self._refill(now)
        if size_bytes > self.depth_bytes:
            return float("inf")
        deficit = size_bytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_bytes_per_s

    def force_consume(self, size_bytes: int, now: float) -> None:
        """Consume tokens unconditionally (may not go below zero).

        Shapers call this at release time: the release instant was
        computed to be exactly when the tokens become available.
        """
        self._refill(now)
        self._tokens = max(0.0, self._tokens - size_bytes)
