"""Strict-priority scheduling helpers.

The testbed routers supported "different levels of service ... through
a simple priority queue structure, with the high priority queue being
assigned to traffic marked with the EF DSCP". The heavy lifting lives
in :class:`repro.sim.queues.PriorityQueueSet`; this module provides the
EF-aware classifier and a convenience factory producing a priority-
scheduled link queue.
"""

from __future__ import annotations

from typing import Optional

from repro.diffserv.dscp import DSCP
from repro.sim.packet import Packet
from repro.sim.queues import PriorityQueueSet

#: Queue levels used by the testbed routers.
EF_LEVEL = 0
BE_LEVEL = 1


def ef_priority_classifier(packet: Packet) -> int:
    """EF-marked packets to the high-priority queue, the rest below."""
    return EF_LEVEL if packet.dscp == int(DSCP.EF) else BE_LEVEL


class PriorityScheduler(PriorityQueueSet):
    """Two-level strict-priority queue set keyed on the EF codepoint.

    Drop-in replacement for a link's output queue: EF packets always
    depart before best-effort packets, which is what shields the video
    stream from cross traffic in the experiments.
    """

    def __init__(self, max_packets_per_level: Optional[int] = 1000):
        super().__init__(
            levels=2,
            max_packets_per_level=max_packets_per_level,
            classify=ef_priority_classifier,
        )

    @property
    def ef_queue(self):
        """The high-priority (EF) FIFO."""
        return self.queue_for_level(EF_LEVEL)

    @property
    def be_queue(self):
        """The best-effort FIFO."""
        return self.queue_for_level(BE_LEVEL)
