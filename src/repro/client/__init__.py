"""Client-side machinery.

Mirrors the paper's instrumented DirectShow client: datagram
reassembly (`reassembly`), a playout buffer that records per-frame
arrival and presentation timing like the paper's storage filter
(`playout`), and the renderer emulation that replays lost/late-frame
concealment by repeating frames (`renderer`, the paper's Figure 2
algorithm).
"""

from repro.client.reassembly import DatagramReassembler
from repro.client.playout import PlayoutClient, FrameRecord, ClientRecord
from repro.client.renderer import RendererEmulation, DisplayTrace

__all__ = [
    "DatagramReassembler",
    "PlayoutClient",
    "FrameRecord",
    "ClientRecord",
    "RendererEmulation",
    "DisplayTrace",
]
