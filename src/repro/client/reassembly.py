"""IP datagram reassembly at the client.

Fragmented datagrams (the large-datagram servers) are only deliverable
when *every* fragment arrives — one policer drop voids up to eleven
received packets. Unfragmented packets pass straight through.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.packet import Packet, PacketSink


class DatagramReassembler:
    """Collects fragments; forwards complete datagrams downstream.

    ``sink.receive`` is called once per completed datagram with the
    *last* fragment (its ``annotations['datagram_bytes']`` holding the
    reassembled payload size), or with the unfragmented packet as-is.
    """

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        timeout_s: float = 2.0,
    ):
        self.engine = engine
        self.sink = sink
        self.timeout_s = timeout_s
        self._pending: dict[int, dict[int, Packet]] = {}
        self._expiry: dict[int, float] = {}
        self.completed_datagrams = 0
        self.expired_datagrams = 0

    def receive(self, packet: Packet) -> None:
        """Accept a packet (PacketSink interface)."""
        if not packet.is_fragmented:
            self.completed_datagrams += 1
            self.sink.receive(packet)
            return
        self._expire_stale()
        did = packet.datagram_id
        if did is None:
            raise ValueError("fragmented packet without a datagram id")
        fragments = self._pending.setdefault(did, {})
        fragments[packet.fragment_index] = packet
        self._expiry.setdefault(did, self.engine.now + self.timeout_s)
        if len(fragments) == packet.fragment_count:
            del self._pending[did]
            self._expiry.pop(did, None)
            self.completed_datagrams += 1
            total = sum(p.size for p in fragments.values())
            packet.annotations["datagram_bytes"] = total
            self.sink.receive(packet)

    def _expire_stale(self) -> None:
        """Drop half-assembled datagrams older than the timeout."""
        now = self.engine.now
        stale = [did for did, t in self._expiry.items() if t < now]
        for did in stale:
            del self._pending[did]
            del self._expiry[did]
            self.expired_datagrams += 1

    @property
    def pending_count(self) -> int:
        """Half-assembled datagrams currently buffered."""
        return len(self._pending)
