"""Playout buffer and timing capture.

This is our equivalent of the paper's DirectShow "storage filter": it
sits where the renderer would, recording for every video frame its
completion (arrival) time and nominal presentation time. The renderer
emulation (:mod:`repro.client.renderer`) replays those records into a
display sequence offline, exactly as the paper's PERL script did.

Frame completion semantics:

* **UDP** — a frame is complete when all of its streamed bytes have
  arrived (packets carry byte counts per frame; fragment loss is
  resolved upstream by the reassembler). A frame with any missing
  bytes never completes.
* **TCP** — the receiver delivers bytes in order; a frame completes
  when its last byte is delivered (late, perhaps, but never lost).
* **Decodability** — completed frames are then filtered through the
  GOP prediction chain: a completed P frame whose anchor was lost is
  still undisplayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.units import UDP_IP_HEADER
from repro.video.gop import GopStructure, decodable_mask
from repro.video.mpeg import EncodedClip


@dataclass(frozen=True)
class FrameRecord:
    """One row of the storage filter's "parallel ASCII file"."""

    frame_id: int
    arrival_time: Optional[float]  # completion time; None = never arrived
    presentation_time: float
    decodable: bool


@dataclass
class ClientRecord:
    """Everything the offline analysis needs about one session."""

    n_frames: int
    fps: float
    records: list[FrameRecord]
    startup_delay: float
    first_arrival_time: float

    @property
    def mean_lateness_s(self) -> float:
        """Mean positive lateness of arrived frames vs their playout time.

        Repairs that beat the deadline contribute nothing; repairs (or
        congested originals) that complete a frame after its nominal
        presentation time contribute their overshoot. This is the
        delay half of the recovery trade-off.
        """
        late = [
            max(0.0, r.arrival_time - r.presentation_time)
            for r in self.records
            if r.arrival_time is not None
        ]
        return sum(late) / len(late) if late else 0.0

    @property
    def lost_frame_fraction(self) -> float:
        """Fraction of source frames that never became displayable.

        This is the "fraction of lost frames" series of the paper's
        figures: frames that never completed *or* completed but were
        undecodable.
        """
        lost = sum(
            1
            for r in self.records
            if r.arrival_time is None or not r.decodable
        )
        return lost / self.n_frames if self.n_frames else 0.0

    def arrival_array(self) -> np.ndarray:
        """Per-frame arrival times; NaN for lost frames."""
        out = np.full(self.n_frames, np.nan)
        for r in self.records:
            if r.arrival_time is not None and r.decodable:
                out[r.frame_id] = r.arrival_time
        return out

    def presentation_array(self) -> np.ndarray:
        """Per-frame nominal presentation times."""
        return np.array([r.presentation_time for r in self.records])


class PlayoutClient:
    """Receives video data, tracks per-frame completion, reports loss.

    Parameters
    ----------
    engine / clip:
        The shared engine and the clip being streamed (provides frame
        byte counts and the GOP structure for decodability).
    startup_delay:
        Client-side buffering before playback starts, measured from
        the first arrival.
    decode_mode:
        ``"gop"`` (default) propagates anchor loss through the GOP;
        ``"independent"`` treats every frame as self-contained (used
        by ablations).
    expected_frame_bytes:
        Override of per-frame expected payload (for thinned streams);
        defaults to the clip's frame sizes. Packets carrying a
        ``frame_total`` annotation override per frame at runtime.
    loss_report_interval:
        When a feedback callback is registered via
        :meth:`set_feedback`, loss fractions are reported at this
        period (the RTCP-ish channel the adaptive servers listen to).
    buffer_cap_frames:
        Bound on the playout buffer, in frames not yet displayed.
        ``0`` (default) models the unbounded buffer the paper's
        storage filter effectively had. With a cap, a frame completing
        while the buffer is full is discarded
        (``buffer_overflow_drops``) and never becomes displayable —
        real set-top clients drop exactly this way.
    """

    def __init__(
        self,
        engine: Engine,
        clip: EncodedClip,
        startup_delay: float = 2.0,
        decode_mode: str = "gop",
        gop: Optional[GopStructure] = None,
        expected_frame_bytes: Optional[np.ndarray] = None,
        loss_report_interval: float = 1.0,
        buffer_cap_frames: int = 0,
    ):
        if decode_mode not in ("gop", "independent"):
            raise ValueError(f"bad decode_mode {decode_mode!r}")
        if buffer_cap_frames < 0:
            raise ValueError(f"buffer_cap_frames must be >= 0: {buffer_cap_frames}")
        self.engine = engine
        self.clip = clip
        self.startup_delay = startup_delay
        self.decode_mode = decode_mode
        self.gop = gop or GopStructure()
        self.loss_report_interval = loss_report_interval

        n = clip.n_frames
        if expected_frame_bytes is None:
            expected_frame_bytes = np.array(
                [f.size_bytes for f in clip.frames], dtype=np.int64
            )
        self._expected = expected_frame_bytes.astype(np.int64).copy()
        self._received_bytes = np.zeros(n, dtype=np.int64)
        self._completion = np.full(n, np.nan)
        self._first_arrival: Optional[float] = None
        self._feedback = None
        self._interval_expected_packets = 0
        self._interval_lost_packets = 0
        self._interval_delays: list[float] = []
        self.received_packets = 0
        self.buffer_cap_frames = buffer_cap_frames
        self.buffer_overflow_drops = 0
        self._completed_count = 0

    # ------------------------------------------------------------------
    # feedback channel
    # ------------------------------------------------------------------
    def set_feedback(self, callback) -> None:
        """Register ``callback(loss_fraction, mean_delay_s)`` reports."""
        self._feedback = callback
        self.engine.schedule(self.loss_report_interval, self._report)

    def note_policer_drop(self, drop) -> None:
        """Experiment harness hook: a packet of ours died upstream.

        ``drop`` is a :class:`repro.diffserv.policer.PolicerDrop`
        record (the client only counts it; the richer fields serve the
        detection and journal layers). Loss is otherwise invisible to a
        UDP client until sequence gaps; counting at the drop point
        keeps the model simple.
        """
        self._interval_lost_packets += 1
        self._interval_expected_packets += 1

    def _report(self) -> None:
        if self._feedback is not None:
            total = self._interval_expected_packets
            loss = (
                self._interval_lost_packets / total if total > 0 else 0.0
            )
            delays = self._interval_delays
            mean_delay = sum(delays) / len(delays) if delays else 0.0
            self._feedback(loss, mean_delay)
            self._interval_expected_packets = 0
            self._interval_lost_packets = 0
            self._interval_delays = []
            self.engine.schedule(self.loss_report_interval, self._report)

    # ------------------------------------------------------------------
    # data paths
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """UDP data path (PacketSink interface)."""
        self.received_packets += 1
        self._interval_expected_packets += 1
        self._interval_delays.append(self.engine.now - packet.created_at)
        if packet.frame_id is None:
            return
        if "datagram_bytes" in packet.annotations:
            payload = packet.annotations["datagram_bytes"] - (
                packet.fragment_count * UDP_IP_HEADER
            )
        else:
            payload = packet.size - UDP_IP_HEADER
        if "frame_total" in packet.annotations:
            self._expected[packet.frame_id] = packet.annotations["frame_total"]
        self._credit(packet.frame_id, payload)

    def on_tcp_deliver(self, frame_id: int, n_bytes: int, time: float) -> None:
        """TCP data path (wired to :class:`TcpReceiver`)."""
        if frame_id < 0:
            return
        if self._first_arrival is None:
            self._first_arrival = time
        self._received_bytes[frame_id] += n_bytes
        if (
            np.isnan(self._completion[frame_id])
            and self._received_bytes[frame_id] >= self._expected[frame_id]
        ):
            self._complete(frame_id, time)

    def _credit(self, frame_id: int, payload: int) -> None:
        if self._first_arrival is None:
            self._first_arrival = self.engine.now
        self._received_bytes[frame_id] += payload
        if (
            np.isnan(self._completion[frame_id])
            and self._received_bytes[frame_id] >= self._expected[frame_id]
        ):
            self._complete(frame_id, self.engine.now)

    def _complete(self, frame_id: int, when: float) -> None:
        """Record frame completion, subject to the buffer bound."""
        if (
            self.buffer_cap_frames
            and self._buffered_at(when) >= self.buffer_cap_frames
        ):
            self.buffer_overflow_drops += 1
            return
        self._completion[frame_id] = when
        self._completed_count += 1

    def _buffered_at(self, when: float) -> int:
        """Completed-but-undisplayed frames at time ``when``."""
        played = 0
        start = self.playback_start
        if start is not None and when > start:
            played = min(
                int((when - start) * self.clip.fps), self.clip.n_frames
            )
        return max(self._completed_count - played, 0)

    @property
    def playback_start(self) -> Optional[float]:
        """Nominal playout start time; None before any data arrives."""
        if self._first_arrival is None:
            return None
        return self._first_arrival + self.startup_delay

    # ------------------------------------------------------------------
    # offline record
    # ------------------------------------------------------------------
    def finalize(self) -> ClientRecord:
        """Close the session and emit the storage-filter record."""
        n = self.clip.n_frames
        t0 = self._first_arrival if self._first_arrival is not None else 0.0
        complete = ~np.isnan(self._completion[:n])
        if self.decode_mode == "gop":
            decodable = decodable_mask(complete, self.gop)
        else:
            decodable = complete.copy()
        # Vectorized bookkeeping with the same float ops as the per-frame
        # form: presentation is (t0 + startup) + f / fps elementwise, and
        # arrivals come straight off the completion array.
        base = t0 + self.startup_delay
        presentation = (base + np.arange(n) / self.clip.fps).tolist()
        completion = self._completion[:n].tolist()
        dec_list = decodable.tolist()
        records = [
            FrameRecord(
                frame_id=f,
                arrival_time=None if c != c else c,  # NaN -> never arrived
                presentation_time=presentation[f],
                decodable=dec_list[f],
            )
            for f, c in enumerate(completion)
        ]
        return ClientRecord(
            n_frames=n,
            fps=self.clip.fps,
            records=records,
            startup_delay=self.startup_delay,
            first_arrival_time=t0,
        )
