"""Renderer emulation: the paper's Figure 2 algorithm.

"The most common and simplest technique is to keep repeating the last
received frame until a new frame arrives. This is the approach we
chose to emulate." The paper's PERL script walks the storage filter's
timing records, maintains an offset between arrival and presentation
time references, and inserts copies of the previous frame whenever the
playback buffer would have run dry.

Our implementation reproduces the two behaviours that matter to VQM:

* **Lost / undecodable frames** — their presentation slots are filled
  with repeats of the last displayed frame; the playback timeline does
  not shift.
* **Late frames** — the renderer stalls (repeating the previous frame)
  until the frame completes, then *shifts the playback point* by the
  stall (rebuffering), so every subsequent frame is displayed later.
  This is what makes the per-segment temporal calibration in the VQM
  tool necessary, and what fails it outright after long stalls.

The output is a :class:`DisplayTrace`: for every display slot, the
source frame index shown (-1 for slots before anything arrived).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.client.playout import ClientRecord


@dataclass
class DisplayTrace:
    """What a viewer actually saw.

    ``display[k]`` is the source frame shown during display slot ``k``
    (slots are 1/fps long, starting at playback start); -1 denotes a
    dark screen before the first displayable frame.
    """

    display: np.ndarray
    fps: float
    n_source_frames: int
    total_stall_s: float
    rebuffer_events: int

    @property
    def n_slots(self) -> int:
        """Number of display slots in the trace."""
        return len(self.display)

    @property
    def frozen_fraction(self) -> float:
        """Fraction of slots that repeat the previous slot's frame."""
        if len(self.display) < 2:
            return 0.0
        repeats = np.sum(self.display[1:] == self.display[:-1])
        return float(repeats) / (len(self.display) - 1)

    @property
    def displayed_source_fraction(self) -> float:
        """Fraction of source frames that ever reached the screen."""
        shown = {int(f) for f in self.display if f >= 0}
        return len(shown) / self.n_source_frames if self.n_source_frames else 0.0


class RendererEmulation:
    """Offline replay of the storage-filter record (paper §3.1.2)."""

    def __init__(self, max_stall_s: float = 10.0, resume_buffer_s: float = 0.0):
        if resume_buffer_s < 0.0:
            raise ValueError(f"resume_buffer_s must be >= 0: {resume_buffer_s}")
        #: A stall longer than this means the session effectively died
        #: (the paper's clients eventually dropped the connection);
        #: the emulation gives up on the remaining frames.
        self.max_stall_s = max_stall_s
        #: Stall-then-resume recovery: after an underrun, real players
        #: keep stalling until this much extra buffer accumulates
        #: before resuming, trading a longer single stall for fewer
        #: repeat underruns. 0 resumes the instant the late frame
        #: lands (the paper's Figure 2 behaviour).
        self.resume_buffer_s = resume_buffer_s

    def replay(self, record: ClientRecord) -> DisplayTrace:
        """Replay a client record into a display trace (see class docs)."""
        fps = record.fps
        slot = 1.0 / fps
        n = record.n_frames
        playback_start = record.first_arrival_time + record.startup_delay
        shift = 0.0  # accumulated rebuffering shift of the playback point
        total_stall = 0.0
        rebuffers = 0

        display: list[int] = []
        last_shown = -1
        for rec in record.records:
            f = rec.frame_id
            scheduled = playback_start + shift + f / fps
            if rec.arrival_time is None or not rec.decodable:
                # Lost frame: its slot shows a repeat; timeline moves on.
                display.append(last_shown)
                continue
            if rec.arrival_time <= scheduled:
                display.append(f)
                last_shown = f
                continue
            # Late frame: stall (repeat) until it completes, then shift
            # the playback point — the "offset" going negative in the
            # paper's script, answered by inserting previous-frame
            # copies.
            stall = rec.arrival_time - scheduled + self.resume_buffer_s
            if stall > self.max_stall_s:
                # Session is hopeless from here on; screen freezes.
                remaining = n - f
                display.extend([last_shown] * remaining)
                total_stall += stall
                rebuffers += 1
                break
            stall_slots = math.ceil(stall / slot)
            display.extend([last_shown] * stall_slots)
            shift += stall_slots * slot
            total_stall += stall_slots * slot
            rebuffers += 1
            display.append(f)
            last_shown = f

        return DisplayTrace(
            display=np.array(display, dtype=np.int64),
            fps=fps,
            n_source_frames=n,
            total_stall_s=total_stall,
            rebuffer_events=rebuffers,
        )
