"""MPEG GOP structure and loss propagation.

MPEG-1 organizes frames into Groups of Pictures: an intra-coded I
frame followed by forward-predicted P frames with bidirectional B
frames between the anchors (display order ``I B B P B B P ...`` for
N=15, M=3). Losing an anchor makes every frame that predicts from it
undecodable — the mechanism that turns a single policer drop into a
burst of lost frames at the client.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class FrameType(enum.Enum):
    """MPEG picture coding types."""

    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class GopStructure:
    """A (N, M) GOP pattern in display order.

    ``n`` is the GOP length (I-to-I distance), ``m`` the anchor spacing
    (number of B frames between anchors plus one). The MPEG-1 default
    and our default is N=15, M=3.
    """

    n: int = 15
    m: int = 3

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("GOP length must be >= 1")
        if self.m < 1:
            raise ValueError("anchor spacing must be >= 1")
        if self.m > self.n:
            raise ValueError("anchor spacing cannot exceed GOP length")

    def frame_type(self, frame_id: int) -> FrameType:
        """Coding type of a frame by its display index."""
        if frame_id < 0:
            raise IndexError("negative frame id")
        position = frame_id % self.n
        if position == 0:
            return FrameType.I
        if position % self.m == 0:
            return FrameType.P
        return FrameType.B

    def frame_types(self, n_frames: int) -> list[FrameType]:
        """Coding types for frames ``0..n_frames-1``."""
        return [self.frame_type(i) for i in range(n_frames)]

    def gop_index(self, frame_id: int) -> int:
        """Which GOP (0-based) a frame belongs to."""
        return frame_id // self.n

    def anchors_required(self, frame_id: int) -> list[int]:
        """Display indices of the frames this frame predicts from.

        * I frames depend on nothing.
        * P frames depend on the previous anchor (I or P).
        * B frames depend on the surrounding two anchors (previous and
          next); a trailing B at the end of the clip only has the
          previous one.
        """
        ftype = self.frame_type(frame_id)
        if ftype is FrameType.I:
            return []
        gop_start = (frame_id // self.n) * self.n
        position = frame_id - gop_start
        if ftype is FrameType.P:
            return [gop_start + ((position - 1) // self.m) * self.m]
        prev_anchor = gop_start + (position // self.m) * self.m
        next_anchor = prev_anchor + self.m
        if next_anchor - gop_start >= self.n:
            # closed-GOP simplification: trailing Bs predict from the
            # next GOP's I frame
            next_anchor = gop_start + self.n
        return [prev_anchor, next_anchor]


def decodable_frames(
    received: Iterable[int],
    n_frames: int,
    gop: GopStructure | None = None,
) -> np.ndarray:
    """Boolean mask of decodable frames given the set actually received.

    A frame is decodable iff it was received intact and every anchor in
    its (transitive) prediction chain is decodable. Anchors beyond the
    clip end are ignored (nothing predicts from them).
    """
    gop = gop or GopStructure()
    received_set = set(received)
    decodable = np.zeros(n_frames, dtype=bool)

    def resolve(frame_id: int) -> None:
        if frame_id not in received_set:
            return
        for anchor in gop.anchors_required(frame_id):
            if anchor < n_frames and not decodable[anchor]:
                return
        decodable[frame_id] = True

    # Decode order: anchors (I/P, which only predict backwards) first,
    # then B frames, whose forward anchor is now resolved.
    anchors = [
        f for f in range(n_frames) if gop.frame_type(f) is not FrameType.B
    ]
    b_frames = [f for f in range(n_frames) if gop.frame_type(f) is FrameType.B]
    for frame_id in anchors:
        resolve(frame_id)
    for frame_id in b_frames:
        resolve(frame_id)
    return decodable


def decodable_mask(
    received_mask: np.ndarray,
    gop: GopStructure | None = None,
) -> np.ndarray:
    """Vectorized :func:`decodable_frames` for a boolean received mask.

    Equivalent logic, computed GOP-at-a-time: anchor decodability is a
    running AND along each GOP's anchor chain (I feeds the first P,
    each P feeds the next), and a B frame needs its surrounding two
    anchors (the forward anchor of a trailing B is the next GOP's I;
    anchors beyond the clip end are ignored). Pure integer/boolean
    logic, so no rounding concerns — the two implementations are
    exactly interchangeable (asserted by the equivalence tests).
    """
    gop = gop or GopStructure()
    n, m = gop.n, gop.m
    received_mask = np.asarray(received_mask, dtype=bool)
    n_frames = len(received_mask)
    if n_frames == 0:
        return np.zeros(0, dtype=bool)
    n_gops = -(-n_frames // n)
    padded = np.zeros(n_gops * n, dtype=bool)
    padded[:n_frames] = received_mask
    per_gop = padded.reshape(n_gops, n)

    anchor_pos = np.arange(0, n, m)
    anchor_dec = np.logical_and.accumulate(per_gop[:, anchor_pos], axis=1)
    dec = np.zeros((n_gops, n), dtype=bool)
    dec[:, anchor_pos] = anchor_dec

    gop_base = np.arange(n_gops) * n
    for pos in range(1, n):
        if pos % m == 0:
            continue  # anchor column, already filled
        prev_k = pos // m
        next_pos = (prev_k + 1) * m
        if next_pos >= n:
            # trailing B: forward anchor is the next GOP's I frame
            next_dec = np.zeros(n_gops, dtype=bool)
            next_dec[:-1] = anchor_dec[1:, 0]
            next_global = gop_base + n
        else:
            next_dec = anchor_dec[:, prev_k + 1]
            next_global = gop_base + next_pos
        ok = anchor_dec[:, prev_k] & (next_dec | (next_global >= n_frames))
        dec[:, pos] = per_gop[:, pos] & ok
    return dec.reshape(-1)[:n_frames]


def loss_amplification(
    lost_packet_frames: Sequence[int],
    n_frames: int,
    gop: GopStructure | None = None,
) -> float:
    """Frames rendered undecodable per directly-hit frame.

    Diagnostic used in tests and the ablation benches: quantifies how
    GOP prediction amplifies packet loss into frame loss.
    """
    gop = gop or GopStructure()
    hit = set(lost_packet_frames)
    if not hit:
        return 0.0
    received = [f for f in range(n_frames) if f not in hit]
    mask = decodable_frames(received, n_frames, gop)
    total_lost = int((~mask).sum())
    return total_lost / len(hit)
