"""Packetization models.

Two styles, matching the two server families in the paper:

* **Small messages** (VideoCharger, WMT with reduced message size):
  application datagrams sized to fit a single packet, so one lost
  packet costs at most one packet's worth of one frame.

* **Large datagrams** (Netshow Theater, ThunderCastIP): application
  datagrams up to 16280 bytes that the sender's IP stack fragments
  into 1500-byte packets transmitted back-to-back. Losing *any*
  fragment loses the whole datagram — the failure mode that made these
  servers unusable under EF policing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.units import ETHERNET_MTU, UDP_IP_HEADER

#: Maximum application datagram the large-datagram servers generate.
MAX_LARGE_DATAGRAM = 16280

#: Payload bytes that fit in one Ethernet-MTU packet under UDP/IP.
MTU_PAYLOAD = ETHERNET_MTU - UDP_IP_HEADER


@dataclass(frozen=True)
class PayloadChunk:
    """A run of stream bytes belonging to one frame."""

    frame_id: int
    n_bytes: int


class Packetizer:
    """Turns frame byte chunks into network packets.

    Parameters
    ----------
    engine:
        Supplies unique packet ids.
    flow_id:
        Flow label stamped on every packet.
    large_datagrams:
        When True, chunks are aggregated into datagrams of up to
        ``max_datagram`` bytes and then fragmented MTU-by-MTU; when
        False, every packet is its own datagram.
    """

    def __init__(
        self,
        engine: Engine,
        flow_id: str,
        large_datagrams: bool = False,
        max_datagram: int = MAX_LARGE_DATAGRAM,
    ):
        if max_datagram <= 0:
            raise ValueError("max_datagram must be positive")
        self.engine = engine
        self.flow_id = flow_id
        self.large_datagrams = large_datagrams
        self.max_datagram = max_datagram
        self._datagram_ids = itertools.count()

    def packetize_chunk(self, chunk: PayloadChunk, now: float) -> list[Packet]:
        """Packets carrying one frame chunk.

        Small-message mode splits the chunk into independent
        MTU-payload packets. Large-datagram mode emits one fragmented
        datagram (all fragments sharing a ``datagram_id``).
        """
        if chunk.n_bytes <= 0:
            return []
        if self.large_datagrams:
            return self._packetize_large(chunk, now)
        packets = []
        remaining = chunk.n_bytes
        while remaining > 0:
            payload = min(MTU_PAYLOAD, remaining)
            packets.append(
                Packet(
                    packet_id=self.engine.next_packet_id(),
                    flow_id=self.flow_id,
                    size=payload + UDP_IP_HEADER,
                    created_at=now,
                    frame_id=chunk.frame_id,
                    datagram_id=next(self._datagram_ids),
                )
            )
            remaining -= payload
        return packets

    def _packetize_large(self, chunk: PayloadChunk, now: float) -> list[Packet]:
        packets: list[Packet] = []
        remaining = chunk.n_bytes
        while remaining > 0:
            datagram_bytes = min(self.max_datagram, remaining)
            packets.extend(self._fragment(chunk.frame_id, datagram_bytes, now))
            remaining -= datagram_bytes
        return packets

    def _fragment(self, frame_id: int, datagram_bytes: int, now: float) -> Iterator[Packet]:
        """IP-fragment one datagram into MTU-sized packets."""
        datagram_id = next(self._datagram_ids)
        fragments = []
        remaining = datagram_bytes
        while remaining > 0:
            payload = min(MTU_PAYLOAD, remaining)
            fragments.append(payload)
            remaining -= payload
        n = len(fragments)
        return [
            Packet(
                packet_id=self.engine.next_packet_id(),
                flow_id=self.flow_id,
                size=payload + UDP_IP_HEADER,
                created_at=now,
                frame_id=frame_id,
                datagram_id=datagram_id,
                fragment_index=i,
                fragment_count=n,
            )
            for i, payload in enumerate(fragments)
        ]
