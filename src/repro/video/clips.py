"""Clip registry and encode/feature caches.

One stop shop for "give me the Dark clip encoded at 1.5 Mbps and its
feature streams". Encoding a clip and extracting features are both
deterministic but not free, so results are cached per process — a
token-rate sweep re-running sixty experiments only pays the cost once.

The caches are guarded by a lock so concurrent callers (threaded
harnesses, pool initializers) never encode the same clip twice or
observe a half-built entry; lookups take the lock only on a miss.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.units import kbps, mbps
from repro.video.frames import FrameFeatures
from repro.video.mpeg import EncodedClip, Mpeg1Encoder
from repro.video.scenes import SceneScript, scene_script_for
from repro.video.wmv import WmvEncoder


@dataclass(frozen=True)
class ClipSpec:
    """Registry entry describing a source clip."""

    name: str
    n_frames: int
    fps: float
    description: str

    @property
    def duration_s(self) -> float:
        """Clip duration in seconds."""
        return self.n_frames / self.fps


#: The paper's two clips (Table 2 gives their frame counts/durations).
CLIPS = {
    "lost": ClipSpec(
        name="lost",
        n_frames=2150,
        fps=29.97,
        description="Action-trailer clip, 71.74 s, fast cuts, high motion",
    ),
    "dark": ClipSpec(
        name="dark",
        n_frames=4219,
        fps=29.97,
        description="Moody-trailer clip, 140.77 s, longer darker scenes",
    ),
}

#: The paper's MPEG-1 encoding rates (Section 3.3.1).
MPEG_RATES_BPS = (mbps(1.0), mbps(1.5), mbps(1.7))

#: The paper's WMV requested bandwidth (Table 3).
WMV_MAX_RATE_BPS = kbps(1015.5)

_script_cache: dict[str, SceneScript] = {}
_encode_cache: dict[tuple, EncodedClip] = {}
_feature_cache: dict[tuple, FrameFeatures] = {}

# Reentrant because the builders nest (clip_features → encode_clip →
# get_script); double-checked locking keeps warm lookups lock-free.
_cache_lock = threading.RLock()


def get_clip(name: str) -> ClipSpec:
    """Look up a registered clip (raises KeyError for unknown names)."""
    if name in CLIPS:
        return CLIPS[name]
    if name.startswith("test-"):
        script = get_script(name)
        return ClipSpec(
            name=name,
            n_frames=script.n_frames,
            fps=script.fps,
            description="synthetic test clip",
        )
    raise KeyError(f"unknown clip {name!r}; known: {sorted(CLIPS)} or test-<n>")


def get_script(name: str) -> SceneScript:
    """Scene script for a clip, cached."""
    script = _script_cache.get(name)
    if script is None:
        with _cache_lock:
            script = _script_cache.get(name)
            if script is None:
                script = scene_script_for(name)
                _script_cache[name] = script
    return script


def encode_clip(
    clip_name: str,
    codec: str = "mpeg1",
    rate_bps: Optional[float] = None,
) -> EncodedClip:
    """Encode (or fetch the cached encoding of) a clip.

    ``codec`` is ``"mpeg1"`` (CBR at ``rate_bps``, default 1.7 Mbps) or
    ``"wmv"`` (VBR capped at ``rate_bps``, default 1015.5 kbps).
    """
    if codec == "mpeg1":
        rate = rate_bps if rate_bps is not None else mbps(1.7)
        encoder_cls = Mpeg1Encoder
    elif codec == "wmv":
        rate = rate_bps if rate_bps is not None else WMV_MAX_RATE_BPS
        encoder_cls = WmvEncoder
    else:
        raise ValueError(f"unknown codec {codec!r}; use 'mpeg1' or 'wmv'")
    key = (clip_name, codec, round(rate))
    encoded = _encode_cache.get(key)
    if encoded is None:
        with _cache_lock:
            encoded = _encode_cache.get(key)
            if encoded is None:
                encoded = encoder_cls(rate).encode(get_script(clip_name))
                _encode_cache[key] = encoded
    return encoded


def clip_features(
    clip_name: str,
    codec: Optional[str] = None,
    rate_bps: Optional[float] = None,
) -> FrameFeatures:
    """Feature streams of a clip version, cached.

    With ``codec=None`` this returns the pristine *reference* features
    (the original source). With a codec, the features of the decoded
    encoding — degraded by the codec's quantizer track — which is what
    a client that received every packet would display.
    """
    if codec is None:
        key = (clip_name, None, None)
        features = _feature_cache.get(key)
        if features is None:
            with _cache_lock:
                features = _feature_cache.get(key)
                if features is None:
                    features = FrameFeatures.extract(get_script(clip_name))
                    _feature_cache[key] = features
        return features
    encoded = encode_clip(clip_name, codec, rate_bps)
    key = (clip_name, codec, round(encoded.target_rate_bps))
    features = _feature_cache.get(key)
    if features is None:
        with _cache_lock:
            features = _feature_cache.get(key)
            if features is None:
                features = FrameFeatures.extract(
                    get_script(clip_name),
                    degradation=encoded.quantizer_track(),
                )
                _feature_cache[key] = features
    return features


def warm_clip_caches(entries: Iterable[tuple]) -> None:
    """Pre-populate the caches for ``(clip, codec, rate_bps)`` triples.

    A triple with ``codec=None`` warms the pristine reference features;
    otherwise both the encoding and its degraded feature streams are
    built. Intended for process-pool initializers, so every worker pays
    the encode cost once up front instead of per experiment; concurrent
    calls are safe.
    """
    for clip_name, codec, rate_bps in entries:
        if codec is None:
            clip_features(clip_name)
        else:
            clip_features(clip_name, codec, rate_bps)


def clear_caches() -> None:
    """Drop all cached scripts/encodings/features (mostly for tests)."""
    with _cache_lock:
        _script_cache.clear()
        _encode_cache.clear()
        _feature_cache.clear()
