"""Windows Media (WMV/ASF) encoder model (paper Table 3).

Unlike the MPEG-1 clips, "the resulting encoding produced by selecting
a given bandwidth value is not a constant rate encoding, and instead
corresponds to a maximum bandwidth value" — the achieved average sits
well below the requested peak (Table 3: 1015.5 kbps requested, 771.7 /
680.4 kbps achieved for Lost / Dark).

We model this as a quality-targeted VBR coder: each frame takes the
bits its content complexity demands, subject to a sliding-window cap at
the requested peak bandwidth. No B frames (I+P only, as in WMV v7-era
codecs), so loss propagation is forward-only within a GOP.

The output is an :class:`~repro.video.mpeg.EncodedClip` whose
``transport_slots`` equal the logical frame sizes — the WMT server
sends each frame as a back-to-back packet burst at the frame instant,
with no mux smoothing. That burstiness (not the average rate) is what
made the local-testbed experiments so much harder to police, which is
exactly the paper's point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.units import BITS_PER_BYTE
from repro.video.gop import FrameType, GopStructure
from repro.video.mpeg import EncodedClip, EncodedFrame
from repro.video.scenes import SceneScript

#: I vs P bit-cost ratio for the WMV model.
WMV_TYPE_WEIGHTS = {FrameType.I: 4.0, FrameType.P: 1.0}


class WmvEncoder:
    """VBR Windows Media encoder model.

    Parameters
    ----------
    max_rate_bps:
        The "expected" (requested) bandwidth: a cap on the windowed
        rate, not a target average. Table 3 uses 1015.5 kbps.
    gop:
        I/P structure; default N=30, M=1 (an I frame every second, no
        B frames).
    quality_scale:
        Bits-per-complexity constant: sets how far below the cap the
        achieved average lands (and the coding quality).
    cap_window_frames:
        Length of the sliding window over which the cap applies.
    """

    def __init__(
        self,
        max_rate_bps: float,
        gop: Optional[GopStructure] = None,
        quality_scale: float = 1.2e6,
        cap_window_frames: int = 15,
        seed: int = 77,
    ):
        if max_rate_bps <= 0:
            raise ValueError("max rate must be positive")
        self.max_rate_bps = max_rate_bps
        self.gop = gop or GopStructure(n=30, m=1)
        self.quality_scale = quality_scale
        self.cap_window_frames = cap_window_frames
        self.seed = seed

    def _demanded_sizes(self, script: SceneScript) -> np.ndarray:
        """Bytes each frame wants, uncapped (pure content demand)."""
        n = script.n_frames
        types = self.gop.frame_types(n)
        demand = np.empty(n, dtype=np.float64)
        per_complexity_bytes = self.quality_scale / script.fps / BITS_PER_BYTE
        cursor = 0
        for scene in script.scenes:
            spatial = 0.4 + 0.6 * scene.spatial_detail
            motion = 0.3 + 0.7 * scene.motion
            for k in range(scene.n_frames):
                f = cursor + k
                weight = WMV_TYPE_WEIGHTS[
                    FrameType.I if types[f] is FrameType.I else FrameType.P
                ]
                cost = spatial if types[f] is FrameType.I else spatial * motion
                if k == 0 and types[f] is not FrameType.I:
                    cost *= 3.0  # scene cut on a P frame: intra blocks
                demand[f] = weight * cost * per_complexity_bytes
            cursor += scene.n_frames
        return demand

    def _apply_cap(self, demand: np.ndarray, fps: float) -> np.ndarray:
        """Apply the requested-bandwidth cap to the demand profile.

        Two constraints, as in real VBR rate control: no single frame
        exceeds ~100 ms worth of the peak bandwidth (bounds I-frame
        bursts), and no sliding window exceeds the peak on average.
        """
        window = self.cap_window_frames
        cap_bytes = self.max_rate_bps * window / fps / BITS_PER_BYTE
        per_frame_cap = self.max_rate_bps * 0.1 / BITS_PER_BYTE
        sizes = np.minimum(demand, per_frame_cap)
        # Two passes of windowed scaling converge well enough for the
        # smooth demand profiles scenes produce.
        for _ in range(2):
            for start in range(0, len(sizes), window):
                chunk = sizes[start : start + window]
                total = chunk.sum()
                limit = cap_bytes * len(chunk) / window
                if total > limit:
                    chunk *= limit / total
        return np.maximum(sizes, 64.0)

    def encode(self, script: SceneScript) -> EncodedClip:
        """Encode a scene script (see module docstring)."""
        demand = self._demanded_sizes(script)
        sizes = np.round(self._apply_cap(demand, script.fps)).astype(np.int64)
        # Quantizer: how far below content demand the cap squeezed us,
        # plus a floor representing the codec's base transparency.
        ratio = sizes / np.maximum(demand, 1.0)
        quantizers = np.clip(1.0 - 0.85 * ratio, 0.08, 0.95).astype(np.float32)
        types = self.gop.frame_types(script.n_frames)
        frames = [
            EncodedFrame(
                frame_id=f,
                frame_type=types[f],
                size_bytes=int(sizes[f]),
                quantizer=float(quantizers[f]),
            )
            for f in range(script.n_frames)
        ]
        return EncodedClip(
            clip_name=script.name,
            codec="wmv",
            target_rate_bps=self.max_rate_bps,
            fps=script.fps,
            frames=frames,
            transport_slots=sizes.copy(),
        )
