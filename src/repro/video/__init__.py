"""Video substrate: synthetic content, codec models, packetization.

The paper streamed two movie-trailer clips ("Lost" and "Dark") encoded
as MPEG-1 CBR (Table 2) and Windows Media VBR (Table 3). We cannot ship
those clips, so this package generates deterministic synthetic stand-ins
with controlled scene structure (`scenes`, `frames`), encodes them with
rate-controlled codec models that reproduce the papers' size/rate
statistics and loss-propagation behaviour (`gop`, `mpeg`, `wmv`,
`clips`), and packetizes the elementary streams the way the paper's
servers did (`packetizer`).
"""

from repro.video.scenes import Scene, SceneScript, scene_script_for
from repro.video.frames import FrameRenderer, FrameFeatures
from repro.video.gop import FrameType, GopStructure, decodable_frames
from repro.video.mpeg import Mpeg1Encoder, EncodedClip, EncodedFrame
from repro.video.wmv import WmvEncoder
from repro.video.clips import ClipSpec, CLIPS, get_clip, encode_clip, clip_features

__all__ = [
    "Scene",
    "SceneScript",
    "scene_script_for",
    "FrameRenderer",
    "FrameFeatures",
    "FrameType",
    "GopStructure",
    "decodable_frames",
    "Mpeg1Encoder",
    "EncodedClip",
    "EncodedFrame",
    "WmvEncoder",
    "ClipSpec",
    "CLIPS",
    "get_clip",
    "encode_clip",
    "clip_features",
]
