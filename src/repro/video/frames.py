"""Synthetic frame rendering and feature extraction.

The VQM methodology is *reduced reference*: quality is judged from
per-frame feature streams (spatial detail, motion, chroma), not from
full frames. We therefore render deterministic synthetic frames whose
feature statistics are controlled by the scene script, extract the
ANSI-style features once, and cache only the features.

Rendering model (per scene): two drifting sinusoidal gratings whose
spatial frequency follows ``spatial_detail`` and whose phase velocity
follows ``motion``, over a mean level set by ``brightness``, plus a
small deterministic noise texture. Chroma planes are near-constant per
scene. Frames are float32 in [0, 1], luma at 64x48 (a 5x downsample of
the paper's 320x240 — a documented substitution; features are scale-
normalized so this only reduces compute).

Encoded (decoded-after-compression) variants are produced by applying
a per-frame degradation: a blend toward a blurred frame plus
quantization noise, with strength driven by the codec model's
quantizer track. Extracting features from degraded frames gives the
encoding-quality floor seen in the paper's fixed-reference
experiments.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np
from scipy import ndimage

from repro.video.scenes import Scene, SceneScript

#: Internal analysis resolution (luma). Chroma is subsampled 2x.
FRAME_HEIGHT = 48
FRAME_WIDTH = 64


def _scene_rng(script_name: str, scene_id: int) -> np.random.Generator:
    """Deterministic per-scene random stream (stable across processes).

    Uses CRC32 rather than ``hash()`` — Python string hashing is
    salted per process, which would make "identical" clips differ
    between runs.
    """
    seed = zlib.crc32(f"{script_name}:{scene_id}".encode()) & 0x7FFFFFFF
    return np.random.default_rng(seed)


class FrameRenderer:
    """Renders the frames of a scene script, scene by scene."""

    def __init__(
        self,
        script: SceneScript,
        height: int = FRAME_HEIGHT,
        width: int = FRAME_WIDTH,
    ):
        self.script = script
        self.height = height
        self.width = width

    def render_scene(self, scene: Scene) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Render one scene.

        Returns ``(y, u, v)`` where ``y`` has shape
        ``(n_frames, height, width)`` and the chroma planes are half
        resolution.
        """
        rng = _scene_rng(self.script.name, scene.scene_id)
        n, h, w = scene.n_frames, self.height, self.width
        yy, xx = np.mgrid[0:h, 0:w].astype(np.float32)
        xx /= w
        yy /= h
        t = np.arange(n, dtype=np.float32)[:, None, None]

        # Spatial frequencies grow with detail; phase velocity with motion.
        f1 = 2.0 + 8.0 * scene.spatial_detail + rng.uniform(0, 1.5)
        f2 = 3.0 + 10.0 * scene.spatial_detail + rng.uniform(0, 2.0)
        angle1 = rng.uniform(0, np.pi)
        angle2 = rng.uniform(0, np.pi)
        omega1 = 0.05 + 0.45 * scene.motion
        omega2 = 0.08 + 0.6 * scene.motion

        g1 = np.sin(
            2 * np.pi * f1 * (np.cos(angle1) * xx + np.sin(angle1) * yy)
            + omega1 * t
        )
        g2 = np.sin(
            2 * np.pi * f2 * (np.cos(angle2) * xx - np.sin(angle2) * yy)
            - omega2 * t
        )
        amp1 = 0.22 * (0.3 + 0.7 * scene.spatial_detail)
        amp2 = 0.13 * (0.3 + 0.7 * scene.spatial_detail)
        noise = rng.standard_normal((n, h, w)).astype(np.float32) * 0.015
        y = scene.brightness + amp1 * g1 + amp2 * g2 + noise
        np.clip(y, 0.0, 1.0, out=y)

        ch, cw = h // 2, w // 2
        u = np.full((n, ch, cw), 0.5 + scene.chroma_u, dtype=np.float32)
        v = np.full((n, ch, cw), 0.5 + scene.chroma_v, dtype=np.float32)
        u += rng.standard_normal((n, ch, cw)).astype(np.float32) * 0.01
        v += rng.standard_normal((n, ch, cw)).astype(np.float32) * 0.01
        return y.astype(np.float32), u, v

    def render_frame(self, frame_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Render a single frame (used by exactness tests)."""
        scene = self.script.scene_of_frame(frame_id)
        offset = 0
        for s in self.script.scenes:
            if s.scene_id == scene.scene_id:
                break
            offset += s.n_frames
        y, u, v = self.render_scene(scene)
        local = frame_id - offset
        return y[local], u[local], v[local]

    def iter_scenes(self) -> Iterator[tuple[Scene, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(scene, y, u, v)`` for each scene in order."""
        for scene in self.script.scenes:
            y, u, v = self.render_scene(scene)
            yield scene, y, u, v


def degrade_stack(
    y: np.ndarray,
    strength: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply codec-style degradation to a luma stack.

    ``strength`` is per-frame in [0, 1]: 0 = transparent coding, 1 =
    coarsest quantization. Degradation blends toward a blurred frame
    (loss of spatial detail) and injects quantization noise.
    """
    if strength.shape[0] != y.shape[0]:
        raise ValueError("one strength value per frame required")
    s = np.clip(strength, 0.0, 1.0).astype(np.float32)[:, None, None]
    blurred = ndimage.uniform_filter(y, size=(1, 3, 3), mode="nearest")
    noise = rng.standard_normal(y.shape).astype(np.float32)
    degraded = (1.0 - 0.8 * s) * y + 0.8 * s * blurred + 0.03 * s * noise
    return np.clip(degraded, 0.0, 1.0).astype(np.float32)


# ----------------------------------------------------------------------
# feature extraction
# ----------------------------------------------------------------------

def spatial_information(y: np.ndarray) -> np.ndarray:
    """SI feature per frame: std of the Sobel gradient magnitude.

    This is the classic ITU-T P.910 / ANSI T1.801.03 spatial
    information measure.
    """
    gx = ndimage.sobel(y, axis=2, mode="nearest")
    gy = ndimage.sobel(y, axis=1, mode="nearest")
    magnitude = np.sqrt(gx * gx + gy * gy)
    return magnitude.std(axis=(1, 2))


def hv_ratio(y: np.ndarray) -> np.ndarray:
    """Ratio of horizontal/vertical edge energy to total edge energy.

    An ANSI T1.801.03-style edge-orientation feature: blur shifts edge
    energy away from crisp H/V structure.
    """
    gx = ndimage.sobel(y, axis=2, mode="nearest")
    gy = ndimage.sobel(y, axis=1, mode="nearest")
    magnitude = np.sqrt(gx * gx + gy * gy) + 1e-9
    angle = np.arctan2(np.abs(gy), np.abs(gx))
    # "HV" energy: gradient within 0.225 rad of an axis.
    hv_mask = (angle < 0.225) | (angle > np.pi / 2 - 0.225)
    hv_energy = (magnitude * hv_mask).sum(axis=(1, 2))
    total = magnitude.sum(axis=(1, 2))
    return hv_energy / total


def temporal_information(y: np.ndarray) -> np.ndarray:
    """TI feature: rms luma difference to the previous frame.

    First frame of the stack gets TI = 0 (no predecessor inside the
    stack); callers stitch scene stacks together.
    """
    ti = np.zeros(y.shape[0], dtype=np.float32)
    if y.shape[0] > 1:
        diff = y[1:] - y[:-1]
        ti[1:] = np.sqrt((diff * diff).mean(axis=(1, 2)))
    return ti


@dataclass
class FrameFeatures:
    """Per-frame reduced-reference feature streams for one clip version.

    All arrays have length ``n_frames``. ``ti[k]`` is the temporal
    difference between frame ``k`` and frame ``k-1`` (0 for frame 0 and
    at scene cuts it is the genuine cross-cut difference).
    """

    clip_name: str
    y_mean: np.ndarray
    y_std: np.ndarray
    si: np.ndarray
    hv: np.ndarray
    ti: np.ndarray
    u_mean: np.ndarray
    v_mean: np.ndarray
    scene_ids: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return len(self.y_mean)

    @classmethod
    def extract(
        cls,
        script: SceneScript,
        degradation: Optional[np.ndarray] = None,
        degradation_seed: int = 7,
        renderer: Optional[FrameRenderer] = None,
    ) -> "FrameFeatures":
        """Render the clip scene by scene and extract features.

        ``degradation`` is an optional per-frame strength array (from a
        codec model); ``None`` extracts pristine reference features.
        """
        renderer = renderer or FrameRenderer(script)
        n = script.n_frames
        if degradation is not None and len(degradation) != n:
            raise ValueError(
                f"degradation length {len(degradation)} != frames {n}"
            )
        rng = np.random.default_rng(degradation_seed)
        y_mean = np.empty(n, dtype=np.float32)
        y_std = np.empty(n, dtype=np.float32)
        si = np.empty(n, dtype=np.float32)
        hv = np.empty(n, dtype=np.float32)
        ti = np.zeros(n, dtype=np.float32)
        u_mean = np.empty(n, dtype=np.float32)
        v_mean = np.empty(n, dtype=np.float32)

        cursor = 0
        prev_last_frame: Optional[np.ndarray] = None
        for scene, y, u, v in renderer.iter_scenes():
            if degradation is not None:
                strengths = degradation[cursor : cursor + scene.n_frames]
                y = degrade_stack(y, strengths, rng)
            sl = slice(cursor, cursor + scene.n_frames)
            y_mean[sl] = y.mean(axis=(1, 2))
            y_std[sl] = y.std(axis=(1, 2))
            si[sl] = spatial_information(y)
            hv[sl] = hv_ratio(y)
            ti[sl] = temporal_information(y)
            if prev_last_frame is not None:
                cut_diff = y[0] - prev_last_frame
                ti[cursor] = float(np.sqrt((cut_diff * cut_diff).mean()))
            u_mean[sl] = u.mean(axis=(1, 2))
            v_mean[sl] = v.mean(axis=(1, 2))
            prev_last_frame = y[-1]
            cursor += scene.n_frames

        return cls(
            clip_name=script.name,
            y_mean=y_mean,
            y_std=y_std,
            si=si,
            hv=hv,
            ti=ti,
            u_mean=u_mean,
            v_mean=v_mean,
            scene_ids=script.scene_ids(),
        )

    # ------------------------------------------------------------------
    # temporal feature composition for display sequences
    # ------------------------------------------------------------------
    def ti_between(self, i: int, j: int) -> float:
        """Temporal difference between displaying frame ``i`` then ``j``.

        * same frame — a freeze: TI is 0;
        * consecutive frames — the measured TI;
        * a skip within a scene — coherent motion accumulates roughly
          linearly, so we sum the per-step TIs and saturate at the
          decorrelation bound (two independent textures differ by
          about ``sqrt(std_i^2 + std_j^2)`` rms). Validated against
          directly rendered frame differences in the test suite.
        * across a scene cut — full decorrelation.
        """
        if j < i:
            i, j = j, i
        if i == j:
            return 0.0
        # Pure function of the (i, j) pair and immutable feature arrays;
        # memoized because the VQM tool re-queries the same transitions
        # for every display sequence of the same clip.
        cache = self.__dict__.get("_ti_cache")
        if cache is None:
            cache = {}
            self.__dict__["_ti_cache"] = cache
        key = (i, j)
        hit = cache.get(key)
        if hit is not None:
            return hit
        bound = float(np.sqrt(self.y_std[i] ** 2 + self.y_std[j] ** 2))
        if self.scene_ids[i] != self.scene_ids[j]:
            value = bound
        else:
            steps = self.ti[i + 1 : j + 1]
            composed = float(np.sum(np.abs(steps.astype(np.float64))))
            value = min(composed, bound)
        cache[key] = value
        return value

    @classmethod
    def composite(
        cls,
        versions: "list[FrameFeatures]",
        selection: np.ndarray,
    ) -> "FrameFeatures":
        """Per-frame mix of several versions of the same clip.

        ``selection[f]`` indexes into ``versions`` for frame ``f`` —
        what a multi-rate server's output looks like to the quality
        meter: each frame carries the features of whichever encoding
        served it.
        """
        if not versions:
            raise ValueError("need at least one version")
        n = versions[0].n_frames
        if any(v.n_frames != n for v in versions):
            raise ValueError("versions must have equal frame counts")
        selection = np.asarray(selection, dtype=np.int64)
        if selection.shape != (n,):
            raise ValueError("selection must have one entry per frame")
        if selection.min() < 0 or selection.max() >= len(versions):
            raise ValueError("selection indexes outside versions")

        def gather(attr: str) -> np.ndarray:
            stacked = np.stack([getattr(v, attr) for v in versions])
            return stacked[selection, np.arange(n)]

        return cls(
            clip_name=versions[0].clip_name,
            y_mean=gather("y_mean"),
            y_std=gather("y_std"),
            si=gather("si"),
            hv=gather("hv"),
            ti=gather("ti"),
            u_mean=gather("u_mean"),
            v_mean=gather("v_mean"),
            scene_ids=versions[0].scene_ids,
        )

    def ti_for_display_sequence(self, display: np.ndarray) -> np.ndarray:
        """TI stream of a rendered display sequence.

        ``display[k]`` is the source frame index shown at presentation
        slot ``k`` (repeats model renderer freezes). Element 0 is 0.
        """
        display = np.asarray(display)
        n = len(display)
        out = np.zeros(n, dtype=np.float32)
        for k in range(1, n):
            out[k] = self.ti_between(int(display[k - 1]), int(display[k]))
        return out
