"""MPEG-1 constant-bit-rate encoder model (paper Table 2).

We model the two things the experiments depend on:

1. **Logical frame sizes** — GOP-weighted (I much larger than P, P
   larger than B) and scene-complexity-driven. These define which
   stream bytes belong to which frame, hence which *frame* a policer
   drop kills, and the quantizer track that sets encoding quality.

2. **The transport schedule** — how many stream bytes leave the server
   during each frame slot. Real CBR MPEG-1 system streams are mux-rate
   controlled: a VBV-style constraint keeps the cumulative transmitted
   byte curve within a small deviation ``D`` of the nominal rate line,
   while per-slot rates still spike to ~1.2-1.3x the average around I
   frames (the paper's Table 2 max/avg rates and Figure 6 wiggles).

   The burst-excess distribution is the load-bearing calibration of
   the whole reproduction: a token bucket of depth ``b`` policing at
   rate ``r`` drops nothing iff the transmission curve never exceeds
   the ``r`` line by more than ``b``. Typical per-GOP bursts well
   under 3 kB with a tail reaching ``D`` = 4.2 kB reproduce the
   paper's headline behaviour — with a 3000-byte bucket the token
   rate must approach the *maximum* instantaneous encoding rate,
   while a 4500-byte bucket is satisfied near the *average* rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.units import BITS_PER_BYTE
from repro.video.gop import FrameType, GopStructure
from repro.video.scenes import SceneScript

#: Relative bit costs of the MPEG picture types (typical MPEG-1 ratios).
FRAME_TYPE_WEIGHTS = {FrameType.I: 5.0, FrameType.P: 2.2, FrameType.B: 0.8}

#: Default cap on a single transport burst's excess over the rate line
#: (bytes). See :meth:`Mpeg1Encoder._transport_schedule`.
DEFAULT_VBV_DEVIATION = 4200.0


@dataclass(frozen=True)
class EncodedFrame:
    """One coded picture.

    ``quantizer`` is a normalized coding coarseness in [0, 1] used by
    the feature degradation model (0 = transparent).
    """

    frame_id: int
    frame_type: FrameType
    size_bytes: int
    quantizer: float


@dataclass
class EncodedClip:
    """A coded clip plus its transport schedule.

    ``frames`` are the logical pictures in display order;
    ``transport_slots[f]`` is the number of stream bytes the server
    emits during presentation slot ``f``. Both sum to the same stream
    length. ``frame_of_byte`` maps a stream byte offset to the frame
    whose data lives there.
    """

    clip_name: str
    codec: str
    target_rate_bps: float
    fps: float
    frames: list[EncodedFrame]
    transport_slots: np.ndarray

    _frame_byte_starts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        sizes = np.array([f.size_bytes for f in self.frames], dtype=np.int64)
        if int(sizes.sum()) != int(self.transport_slots.sum()):
            raise ValueError(
                "frame sizes and transport schedule disagree on stream length"
            )
        self._frame_byte_starts = np.concatenate([[0], np.cumsum(sizes)])

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        """Total stream bytes."""
        return int(self._frame_byte_starts[-1])

    @property
    def duration_s(self) -> float:
        """Clip duration in seconds."""
        return self.n_frames / self.fps

    def frame_of_byte(self, offset: int) -> int:
        """Display index of the frame owning stream byte ``offset``."""
        if not 0 <= offset < self.total_bytes:
            raise IndexError(f"byte offset {offset} outside stream")
        return int(np.searchsorted(self._frame_byte_starts, offset, "right") - 1)

    def byte_range_of_frame(self, frame_id: int) -> tuple[int, int]:
        """Half-open stream byte range ``[start, end)`` of a frame."""
        return (
            int(self._frame_byte_starts[frame_id]),
            int(self._frame_byte_starts[frame_id + 1]),
        )

    def quantizer_track(self) -> np.ndarray:
        """Per-frame degradation strengths for the feature extractor."""
        return np.array([f.quantizer for f in self.frames], dtype=np.float32)

    # ------------------------------------------------------------------
    # Table 2-style statistics
    # ------------------------------------------------------------------
    def per_slot_rates_bps(self) -> np.ndarray:
        """Instantaneous (per frame slot) transmission rates.

        This is the "rate information computed after every frame"
        of the paper's Table 2 / Figure 6.
        """
        return self.transport_slots.astype(np.float64) * self.fps * BITS_PER_BYTE

    def rate_stats(self) -> dict:
        """Max / average / min instantaneous rates plus stream totals."""
        rates = self.per_slot_rates_bps()
        return {
            "bytes_total": self.total_bytes,
            "n_frames": self.n_frames,
            "duration_s": self.duration_s,
            "avg_frame_bytes": self.total_bytes / self.n_frames,
            "rate_max_bps": float(rates.max()),
            "rate_avg_bps": float(rates.mean()),
            "rate_min_bps": float(rates.min()),
        }

    def max_burst_excess_bytes(self, rate_bps: float) -> float:
        """Largest excess of the transmission curve over a ``rate_bps`` line.

        Equals the minimum token-bucket depth (ignoring packet
        granularity) that passes this schedule without drops at that
        token rate — the empirical burstiness curve.
        """
        slot_s = 1.0 / self.fps
        per_slot_allowance = rate_bps * slot_s / BITS_PER_BYTE
        deltas = self.transport_slots.astype(np.float64) - per_slot_allowance
        # Maximum suffix-reset running sum (Kadane-style).
        running = 0.0
        worst = 0.0
        for d in deltas:
            running = max(0.0, running + d)
            worst = max(worst, running)
        return worst


class Mpeg1Encoder:
    """CBR MPEG-1 encoder model.

    Parameters
    ----------
    rate_bps:
        Target (mux) bitrate — the paper uses 1.0, 1.5 and 1.7 Mbps.
    gop:
        GOP pattern (default N=15, M=3).
    vbv_deviation_bytes:
        Bound on the transport schedule's deviation from the nominal
        rate line (see module docstring).
    quality_scale:
        Bits-per-complexity constant for the quantizer model; higher
        values make a given bitrate look worse (coarser quantizers).
    """

    def __init__(
        self,
        rate_bps: float,
        gop: Optional[GopStructure] = None,
        vbv_deviation_bytes: float = DEFAULT_VBV_DEVIATION,
        quality_scale: float = 2.6e6,
        seed: int = 99,
    ):
        if rate_bps <= 0:
            raise ValueError("encoding rate must be positive")
        self.rate_bps = rate_bps
        self.gop = gop or GopStructure()
        self.vbv_deviation_bytes = vbv_deviation_bytes
        self.quality_scale = quality_scale
        self.seed = seed

    # -- logical frame sizes -------------------------------------------
    def _frame_complexities(self, script: SceneScript) -> np.ndarray:
        """Relative coding complexity of each frame."""
        n = script.n_frames
        types = self.gop.frame_types(n)
        complexity = np.empty(n, dtype=np.float64)
        cursor = 0
        for scene in script.scenes:
            for k in range(scene.n_frames):
                f = cursor + k
                ftype = types[f]
                spatial = 0.45 + 0.55 * scene.spatial_detail
                if ftype is FrameType.I:
                    # Intra frames cost spatial detail only.
                    complexity[f] = FRAME_TYPE_WEIGHTS[ftype] * spatial
                else:
                    # Predicted frames cost residual energy: motion-
                    # dependent, and a scene's first anchor after a cut
                    # is nearly intra-cost.
                    motion = 0.35 + 0.65 * scene.motion
                    complexity[f] = FRAME_TYPE_WEIGHTS[ftype] * spatial * motion
                    if k == 0:
                        complexity[f] *= 2.5  # cut: prediction fails
            cursor += scene.n_frames
        return complexity

    def _allocate_frame_sizes(self, script: SceneScript) -> np.ndarray:
        """TM5-style per-GOP budget allocation → frame sizes in bytes."""
        n = script.n_frames
        complexity = self._frame_complexities(script)
        avg_frame_bytes = self.rate_bps / self.fps_of(script) / BITS_PER_BYTE
        sizes = np.empty(n, dtype=np.float64)
        carry = 0.0  # rate-control feedback between GOPs
        for start in range(0, n, self.gop.n):
            end = min(start + self.gop.n, n)
            budget = avg_frame_bytes * (end - start) - carry
            weights = complexity[start:end]
            sizes[start:end] = budget * weights / weights.sum()
            carry = sizes[start:end].sum() - avg_frame_bytes * (end - start)
        return np.maximum(sizes, 64.0)

    @staticmethod
    def fps_of(script: SceneScript) -> float:
        """Frame rate of a scene script."""
        return script.fps

    # -- quantizer model ------------------------------------------------
    def _quantizers(
        self, script: SceneScript, sizes: np.ndarray
    ) -> np.ndarray:
        """Normalized coding coarseness per frame.

        A frame that gets fewer bits than its complexity demands is
        quantized coarsely. The constant ``quality_scale`` converts
        scene complexity into "bits for transparent coding".
        """
        complexity = self._frame_complexities(script)
        # Bytes for near-transparent coding of one complexity unit;
        # calibrated so the paper's rates land at sensible coarseness
        # (~0.10 mean strength at 1.7 Mbps, ~0.16 at 1.5, ~0.31 at 1.0).
        transparent_bytes = complexity * 4890.0 * (self.quality_scale / 2.6e6)
        ratio = sizes / np.maximum(transparent_bytes, 1.0)
        strengths = np.clip(0.61 - 0.338 * ratio, 0.03, 0.95)
        return strengths.astype(np.float32)

    # -- transport schedule ---------------------------------------------
    def _transport_schedule(self, sizes: np.ndarray) -> np.ndarray:
        """Per-slot byte counts of the mux-smoothed transport stream.

        The model: the server/mux tracks the nominal rate closely
        (small AR(1) wobble), but each GOP's I frame pushes a short
        burst — one to three slots at up to ~1.27x the nominal rate —
        whose *cumulative excess over the rate line* is drawn from a
        skewed distribution: typically well under 3000 bytes, with a
        tail reaching ``vbv_deviation_bytes`` (~3.9 kB by default).
        Each burst is paid back by slightly slower slots immediately
        after it.

        Those excess values are the whole story of the paper's results:
        a 3000-byte bucket at the average rate drops the tail of the
        distribution every few GOPs, while a 4500-byte bucket passes
        all but the rarest events; raising the token rate toward the
        maximum instantaneous rate shrinks every burst's effective
        excess to zero.
        """
        n = len(sizes)
        total = int(sizes.sum())
        avg = total / n
        rng = np.random.default_rng(self.seed + int(self.rate_bps) % 10007)

        # Baseline wobble with a *bounded integral*: slot deviations
        # are differences of a bounded buffer-level process B, so the
        # cumulative curve never drifts more than |B| from the rate
        # line no matter how long the clip is.
        b_bound = min(400.0, 0.06 * avg)
        levels = np.empty(n + 1)
        levels[0] = 0.0
        innovations = rng.standard_normal(n) * (0.35 * b_bound)
        for f in range(n):
            levels[f + 1] = np.clip(
                0.85 * levels[f] + innovations[f], -b_bound, b_bound
            )
        deltas = np.diff(levels)

        ceiling = 1.27 * avg
        floor = 0.68 * avg
        d_max = self.vbv_deviation_bytes

        # One burst event per GOP, anchored at the I frame slot, whose
        # excess distribution is the calibration target (module
        # docstring). Paybacks make each burst locally byte-neutral.
        for gop_start in range(0, n, self.gop.n):
            roll = rng.random()
            if roll < 0.87:
                excess = rng.triangular(600, 1400, 2300)
            elif roll < 0.97:
                excess = rng.uniform(2300, 3000)
            else:
                excess = rng.uniform(3000, d_max)
            excess = min(excess, d_max, 0.75 * avg * 3)
            k = max(1, int(np.ceil(excess / (0.25 * avg))))
            k = min(k, 3, n - gop_start)
            deltas[gop_start : gop_start + k] += excess / k
            payback_len = min(9, max(1, self.gop.n - k - 1))
            start = gop_start + k
            stop = min(start + payback_len, n)
            if stop > start:
                deltas[start:stop] -= excess / (stop - start)
            else:  # burst at the very end of the clip: retract it
                deltas[gop_start : gop_start + k] -= excess / k

        # Apply per-slot rate limits with a carry so clipping never
        # loses or invents stream bytes.
        slots_int = np.empty(n, dtype=np.int64)
        carry = 0.0
        for f in range(n):
            want = avg + deltas[f] + carry
            sent = float(np.clip(want, floor, ceiling))
            carry = want - sent
            slots_int[f] = int(round(sent))
        # Rounding residue: spread one byte at a time (cannot burst).
        residue = int(total - slots_int.sum())
        direction = 1 if residue > 0 else -1
        f = 0
        step = max(1, n // max(abs(residue), 1))
        while residue != 0:
            slots_int[f % n] += direction
            residue -= direction
            f += step
        return slots_int

    # -- public API ------------------------------------------------------
    def encode(self, script: SceneScript) -> EncodedClip:
        """Encode a scene script into frames + transport schedule."""
        raw_sizes = self._allocate_frame_sizes(script)
        sizes = np.round(raw_sizes).astype(np.int64)
        quantizers = self._quantizers(script, raw_sizes)
        slots = self._transport_schedule(sizes.astype(np.float64))
        # Conserve total stream bytes exactly.
        diff = int(sizes.sum() - slots.sum())
        slots[-1] += diff
        types = self.gop.frame_types(script.n_frames)
        frames = [
            EncodedFrame(
                frame_id=f,
                frame_type=types[f],
                size_bytes=int(sizes[f]),
                quantizer=float(quantizers[f]),
            )
            for f in range(script.n_frames)
        ]
        return EncodedClip(
            clip_name=script.name,
            codec="mpeg1",
            target_rate_bps=self.rate_bps,
            fps=script.fps,
            frames=frames,
            transport_slots=slots,
        )
