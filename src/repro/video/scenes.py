"""Scene scripts for the synthetic clips.

A clip is a deterministic sequence of scenes. Each scene fixes the
statistical character of its frames: spatial detail (how much edge
energy), motion (how fast content moves frame to frame), brightness,
and chroma. Scene boundaries are hard cuts, which matter twice: the
encoder spends extra bits at cuts, and the VQM temporal features
decorrelate across them.

The two scripts mimic the papers' clips at the level that matters for
the experiments:

* ``lost`` — action-movie trailer: 2150 frames (71.74 s at 29.97 fps),
  fast cuts, high motion, bright scenes.
* ``dark`` — 4219 frames (140.77 s), longer moodier scenes, lower
  brightness, more static shots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class Scene:
    """Statistical description of one shot.

    All levels are dimensionless in [0, 1] except ``n_frames``.
    ``spatial_detail`` scales edge energy, ``motion`` scales per-frame
    displacement, ``brightness`` sets the mean luma, ``chroma_u/v`` set
    the mean chrominance offsets.
    """

    scene_id: int
    n_frames: int
    spatial_detail: float
    motion: float
    brightness: float
    chroma_u: float
    chroma_v: float

    def __post_init__(self) -> None:
        if self.n_frames <= 0:
            raise ValueError("scene must contain at least one frame")
        for name in ("spatial_detail", "motion", "brightness"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")


@dataclass(frozen=True)
class SceneScript:
    """Ordered list of scenes plus clip-level constants."""

    name: str
    scenes: tuple[Scene, ...]
    fps: float

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return sum(s.n_frames for s in self.scenes)

    @property
    def duration_s(self) -> float:
        """Clip duration in seconds."""
        return self.n_frames / self.fps

    def scene_of_frame(self, frame_id: int) -> Scene:
        """The scene that frame ``frame_id`` belongs to."""
        if frame_id < 0:
            raise IndexError(f"negative frame id {frame_id}")
        cursor = 0
        for scene in self.scenes:
            cursor += scene.n_frames
            if frame_id < cursor:
                return scene
        raise IndexError(f"frame {frame_id} beyond clip end ({self.n_frames})")

    def scene_ids(self) -> np.ndarray:
        """Array mapping every frame index to its scene id."""
        ids = np.empty(self.n_frames, dtype=np.int32)
        cursor = 0
        for scene in self.scenes:
            ids[cursor : cursor + scene.n_frames] = scene.scene_id
            cursor += scene.n_frames
        return ids


def _build_script(
    name: str,
    total_frames: int,
    fps: float,
    seed: int,
    mean_scene_s: float,
    detail_range: tuple[float, float],
    motion_range: tuple[float, float],
    brightness_range: tuple[float, float],
) -> SceneScript:
    """Generate a deterministic script totalling exactly ``total_frames``."""
    rng = np.random.default_rng(seed)
    scenes: List[Scene] = []
    remaining = total_frames
    scene_id = 0
    mean_scene_frames = mean_scene_s * fps
    while remaining > 0:
        length = int(rng.gamma(shape=4.0, scale=mean_scene_frames / 4.0))
        length = max(int(0.6 * fps), length)  # no sub-0.6 s shots
        if remaining - length < int(0.6 * fps):
            length = remaining
        scenes.append(
            Scene(
                scene_id=scene_id,
                n_frames=length,
                spatial_detail=float(rng.uniform(*detail_range)),
                motion=float(rng.uniform(*motion_range)),
                brightness=float(rng.uniform(*brightness_range)),
                chroma_u=float(rng.uniform(-0.15, 0.15)),
                chroma_v=float(rng.uniform(-0.15, 0.15)),
            )
        )
        remaining -= length
        scene_id += 1
    return SceneScript(name=name, scenes=tuple(scenes), fps=fps)


#: Frame rate used by both clips (NTSC film transfer).
CLIP_FPS = 29.97


def scene_script_for(clip_name: str) -> SceneScript:
    """Return the deterministic scene script for a registered clip name.

    The custom ``test-*`` names produce short clips for fast tests:
    ``test-<n>`` gives an ``n``-frame clip with the "lost" character.
    """
    if clip_name == "lost":
        return _build_script(
            "lost",
            total_frames=2150,
            fps=CLIP_FPS,
            seed=1001,
            mean_scene_s=2.8,
            detail_range=(0.45, 0.95),
            motion_range=(0.35, 0.95),
            brightness_range=(0.45, 0.8),
        )
    if clip_name == "dark":
        return _build_script(
            "dark",
            total_frames=4219,
            fps=CLIP_FPS,
            seed=2002,
            mean_scene_s=4.5,
            detail_range=(0.3, 0.8),
            motion_range=(0.15, 0.7),
            brightness_range=(0.2, 0.55),
        )
    if clip_name.startswith("test-"):
        try:
            n_frames = int(clip_name.split("-", 1)[1])
        except ValueError as exc:
            raise ValueError(f"bad test clip name {clip_name!r}") from exc
        return _build_script(
            clip_name,
            total_frames=n_frames,
            fps=CLIP_FPS,
            seed=42,
            mean_scene_s=2.0,
            detail_range=(0.4, 0.9),
            motion_range=(0.3, 0.9),
            brightness_range=(0.4, 0.8),
        )
    raise KeyError(f"unknown clip {clip_name!r}; known: lost, dark, test-<n>")
