"""repro — reproduction of Ashmawi, Guérin, Wolf & Pinson (SIGCOMM 2001),
"On the Impact of Policing and Rate Guarantees in Diff-Serv Networks:
A Video Streaming Application Perspective".

Everything is simulated in-process: a discrete-event network
(`repro.sim`), DiffServ edge/core machinery (`repro.diffserv`),
synthetic video codecs and clips (`repro.video`), the paper's server
and client models (`repro.server`, `repro.client`), an objective video
quality meter (`repro.vqm`), the two testbed topologies
(`repro.testbeds`), and the experiment harness tying them together
(`repro.core`).

Quickstart::

    from repro import ExperimentSpec, run_experiment
    from repro.units import mbps

    result = run_experiment(ExperimentSpec(
        clip="lost", codec="mpeg1", encoding_rate_bps=mbps(1.7),
        token_rate_bps=mbps(1.9), bucket_depth_bytes=3000,
    ))
    print(result.quality_score, result.lost_frame_fraction)
"""

from repro.core.experiment import ExperimentSpec, ExperimentResult, run_experiment
from repro.core.runner import (
    ProcessPoolRunner,
    ResultSummary,
    SerialRunner,
    make_runner,
    spec_fingerprint,
)
from repro.core.resultstore import ResultStore
from repro.core.sweep import SweepResult, token_rate_sweep
from repro.core.analysis import find_quality_cutoff, nonlinearity_index
from repro.core.report import render_sweep, render_table

__version__ = "0.1.0"

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "SweepResult",
    "token_rate_sweep",
    "SerialRunner",
    "ProcessPoolRunner",
    "ResultSummary",
    "ResultStore",
    "make_runner",
    "spec_fingerprint",
    "find_quality_cutoff",
    "nonlinearity_index",
    "render_sweep",
    "render_table",
    "__version__",
]
