"""Unit helpers shared across the library.

All simulation code uses SI base units internally:

* time        -- seconds (float)
* data size   -- bytes (int) unless a name says otherwise
* data rate   -- bits per second (float)

These helpers exist so call sites read naturally (``mbps(1.7)``) instead
of sprinkling ``1.7e6`` literals around, and so conversions between the
byte-oriented packet world and the bit-oriented rate world stay in one
place.
"""

from __future__ import annotations

#: Bits in a byte; named to keep ``* 8`` from looking like magic.
BITS_PER_BYTE = 8

#: Ethernet maximum transmission unit in bytes, used throughout the paper
#: ("a token bucket depth of one or at most two MTUs").
ETHERNET_MTU = 1500

#: UDP/IP header overhead in bytes (20 IP + 8 UDP).
UDP_IP_HEADER = 28

#: TCP/IP header overhead in bytes (20 IP + 20 TCP, no options).
TCP_IP_HEADER = 40


def kbps(value: float) -> float:
    """Convert kilobits/second to bits/second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def to_mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second (for reporting)."""
    return bits_per_second / 1e6


def bits(nbytes: float) -> float:
    """Convert bytes to bits."""
    return nbytes * BITS_PER_BYTE


def bytes_from_bits(nbits: float) -> float:
    """Convert bits to bytes."""
    return nbits / BITS_PER_BYTE


def transmission_time(nbytes: float, rate_bps: float) -> float:
    """Seconds needed to serialize ``nbytes`` onto a link of ``rate_bps``.

    Raises ``ValueError`` for a non-positive rate: an unserviceable link
    is a configuration error, not an infinitely slow one.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return bits(nbytes) / rate_bps


def seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1e3
