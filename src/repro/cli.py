"""Command-line interface.

Eight subcommands mirror the library's main entry points::

    python -m repro run   --clip lost --encoding 1.7 --rate 1.9 --depth 3000
    python -m repro sweep --clip lost --encoding 1.7 \
        --rates 1.7,1.8,1.9,2.0 --depths 3000,4500 \
        [--jobs 4] [--cache] [--cache-dir DIR] [--csv out.csv] \
        [--max-retries 2] [--spec-timeout 600] [--journal FILE] [--resume] \
        [--adaptive] [--cliff-threshold Q] [--progress] [--shards N]
    python -m repro clips
    python -m repro detect    --clip test-300 --rate 1.5 --depth 3000
    python -m repro recommend --clip lost --depths 3000,4500 \
        [--target-score 0.05 | --target-loss F] [--jobs 4] [--cache | --warm]
    python -m repro serve [--cache-dir DIR] [--jobs 4]
    python -m repro worker [--host 127.0.0.1] [--port 0] [--slots 1] \
        [--announce-host NAME] [--auth-token TOKEN]
    python -m repro fleet  MANIFEST [--auth-token TOKEN] [--poll 0.1]

``run`` prints the headline measurements (and a MOS verdict) for one
experiment; ``sweep`` prints a paper-style figure (optionally writing
the raw CSV); ``clips`` lists the registered clips and their encoding
statistics; ``detect`` runs one trace-enabled experiment, infers the
policing token bucket from the trace alone (:mod:`repro.detect`), and
scores the inference against the configured ground truth;
``recommend`` searches for the minimal token rate per bucket depth
meeting a quality target and classifies each minimum on the paper's
average-rate↔maximum-rate axis. Sweeps execute through the runner layer: ``--jobs N``
spreads the batch over worker processes, and ``--cache`` keys each
point's result by its spec fingerprint in an on-disk store so a
repeated sweep performs no simulations (a hit/miss/time-saved line is
printed after the figure).

Fault tolerance: ``--max-retries``/``--spec-timeout`` attach a retry
policy, so a crashing or hanging grid point is retried with backoff
and, if it never recovers, quarantined while the rest of the sweep
completes; a sweep with quarantined specs prints a one-line summary to
stderr and exits 3. ``--journal FILE`` checkpoints every outcome as it
resolves (``--journal-compact N`` folds the log into a checkpoint
every N outcomes), and ``--resume`` reloads that journal so an
interrupted campaign re-simulates nothing it already finished.

Campaign features: ``sweep --adaptive`` runs the cliff-seeking sampler
(coarse grid plus recursive refinement around quality jumps — see
:mod:`repro.core.campaign.sampler`) instead of the full grid;
``--cliff-threshold`` sets the quality_score jump that triggers
refinement. ``--progress`` streams a one-line progress/ETA report to
stderr, fed by the scheduler's outcome stream. ``--shards`` overrides
the scheduler's work-stealing shard count. ``recommend --warm`` binds
the search to the warm result store through a
:class:`~repro.core.campaign.service.CampaignService`, and ``serve``
runs that service as a JSON-lines request/response loop on
stdin/stdout.

Multi-host execution: ``worker`` hosts one remote campaign worker (a
TCP JSON-lines server announcing its bound address on stdout), and
``sweep --workers HOST:PORT,...`` dispatches the sweep to such a
fleet — with heartbeat liveness, automatic reassignment of units from
dead or partitioned workers, per-host circuit breakers, and graceful
degradation to local execution when every worker is lost (see
:mod:`repro.core.campaign.remote`). ``fleet MANIFEST`` supervises such
a fleet from a TOML/JSON manifest: it spawns the workers, respawns
crashed ones with exponential backoff, quarantines crash-loopers, and
prints the connectable roster to paste into ``sweep --workers`` (see
:mod:`repro.core.campaign.fleet`). ``--auth-token TOKEN`` (or the
``REPRO_AUTH_TOKEN`` environment variable) on ``worker``, ``sweep``
and ``fleet`` enables mutual HMAC authentication on the wire; a peer
without the shared token is rejected permanently. A worker bound to a
wildcard interface (``--host 0.0.0.0``) announces a connectable
hostname instead — override it with ``--announce-host`` when the
resolved name is not reachable from the scheduler.

Profiling: ``run --profile`` / ``sweep --profile`` (or the
``REPRO_PROFILE=1`` environment variable) execute the command under
``cProfile`` and print the top 20 cumulative-time functions to stderr
after the normal output.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.export import result_to_json, sweep_to_csv
from repro.core.faults import RetryPolicy
from repro.core.report import render_sweep, render_table
from repro.core.resultstore import ResultStore, default_cache_dir
from repro.core.runner import make_runner
from repro.core.sweep import token_rate_sweep, validate_grid
from repro.units import mbps, to_mbps
from repro.video.clips import CLIPS, encode_clip
from repro.vqm.mos import describe


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clip", default="lost", help="clip name (lost, dark, test-<n>)")
    parser.add_argument("--codec", default="mpeg1", choices=["mpeg1", "wmv"])
    parser.add_argument(
        "--encoding", type=float, default=None,
        help="encoding rate in Mbps (codec default if omitted)",
    )
    parser.add_argument(
        "--server", default="videocharger",
        choices=["videocharger", "wmt", "largeudp"],
    )
    parser.add_argument("--transport", default="udp", choices=["udp", "tcp"])
    parser.add_argument(
        "--testbed", default="qbone", choices=["qbone", "local", "af"]
    )
    parser.add_argument("--shaper", action="store_true", help="insert the Linux shaper")
    parser.add_argument(
        "--reference", default="transmitted", choices=["transmitted", "fixed"]
    )
    parser.add_argument("--cross", type=float, default=0.0, help="cross traffic (Mbps)")
    parser.add_argument("--adaptation", action="store_true")
    parser.add_argument(
        "--arq", action="store_true",
        help="selective-repeat ARQ with deadline-aware repair (UDP only)",
    )
    parser.add_argument(
        "--fec", type=int, default=0, metavar="K",
        help="XOR parity packet per K data packets (0 = off; UDP only)",
    )
    parser.add_argument(
        "--feedback-loss", type=float, default=0.0, metavar="P",
        help="loss rate of the client-to-server feedback channel",
    )
    parser.add_argument(
        "--feedback-rtt", type=float, default=0.02, metavar="S",
        help="round-trip time of the feedback channel (seconds)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _spec_from_args(args, token_rate_mbps: float, depth: float) -> ExperimentSpec:
    return ExperimentSpec(
        clip=args.clip,
        codec=args.codec,
        encoding_rate_bps=mbps(args.encoding) if args.encoding else None,
        server=args.server,
        transport=args.transport,
        testbed=args.testbed,
        token_rate_bps=mbps(token_rate_mbps),
        bucket_depth_bytes=depth,
        use_shaper=args.shaper,
        cross_traffic_bps=mbps(args.cross),
        reference=args.reference,
        adaptation=args.adaptation,
        arq=args.arq,
        fec_group=args.fec,
        feedback_loss=args.feedback_loss,
        feedback_rtt_s=args.feedback_rtt,
        seed=args.seed,
    )


def _cmd_run(args) -> int:
    spec = _spec_from_args(args, args.rate, args.depth)
    result = run_experiment(spec)
    if args.json:
        print(result_to_json(result))
        return 0
    print(
        f"clip={spec.clip} codec={spec.codec} server={spec.server} "
        f"testbed={spec.testbed} r={args.rate} Mbps b={args.depth:.0f} B"
    )
    print(f"frame loss:        {100 * result.lost_frame_fraction:.2f}%")
    print(f"packet drops:      {100 * result.packet_drop_fraction:.2f}%")
    print(f"frozen display:    {100 * result.trace.frozen_fraction:.2f}%")
    print(f"rebuffer stalls:   {result.trace.rebuffer_events}")
    recovery = result.extras.get("recovery")
    if recovery is not None:
        print(
            f"recovery:          {recovery['nacks_sent']} NACKs, "
            f"{recovery['repairs_sent']} repairs "
            f"({recovery['repairs_arrived_late']} late), "
            f"{recovery['fec_repaired']} FEC-repaired, "
            f"{recovery['feedback_lost']} feedback lost"
        )
    print(describe(result.quality_score))
    return 0


def _cmd_sweep(args) -> int:
    if args.jobs < 1:
        raise ValueError(f"--jobs must be at least 1 (got {args.jobs})")
    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal FILE")
    if args.adaptive and args.journal:
        raise ValueError(
            "--adaptive does not support --journal (the evaluated subset "
            "is data-dependent); use --cache for warm restarts instead"
        )
    if args.journal_compact is not None and not args.journal:
        raise ValueError("--journal-compact requires --journal FILE")
    if args.shards is not None and args.shards < 1:
        raise ValueError(f"--shards must be at least 1 (got {args.shards})")
    # Validate the whole grid up front: a typo'd rate or duplicated
    # depth should die here, not an hour into the campaign.
    rates = [mbps(float(r)) for r in args.rates.split(",")]
    depths = [float(d) for d in args.depths.split(",")]
    rates, depths = validate_grid(rates, depths)
    base = _spec_from_args(args, to_mbps(rates[0]), depths[0])
    if args.flows:
        # Multi-flow sweep: every grid point polices an N-flow
        # aggregate instead of a single flow. Flow-level shaping is
        # not expressible inside an aggregate; cross traffic moves to
        # the aggregate (backbone) level.
        import dataclasses as _dc

        from repro.flows.aggregate import AggregateSpec

        if args.flows < 1:
            raise ValueError(f"--flows must be at least 1 (got {args.flows})")
        if args.shaper:
            raise ValueError("--flows does not support --shaper")
        member = _dc.replace(base, cross_traffic_bps=0.0)
        base = AggregateSpec.homogeneous(
            member,
            args.flows,
            spacing_s=args.flow_spacing,
            policing=args.flow_policing,
            cross_traffic_bps=mbps(args.cross),
        )
    use_cache = (
        args.cache if args.cache is not None else args.cache_dir is not None
    )
    store = None
    if use_cache:
        store = ResultStore(args.cache_dir or default_cache_dir())
    retry = None
    if args.max_retries is not None or args.spec_timeout is not None:
        retry = RetryPolicy(
            max_retries=args.max_retries if args.max_retries is not None else 2,
            spec_timeout_s=args.spec_timeout,
        )
    if args.workers:
        # Multi-host execution: dispatch units to a fleet of
        # `repro worker` processes; worker loss is survived via
        # reassignment and, at worst, local serial fallback.
        from repro.core.campaign import RemoteRunner, parse_worker_addresses

        runner = RemoteRunner(
            parse_worker_addresses(args.workers),
            store=store,
            retry=retry,
            heartbeat_s=args.heartbeat,
            liveness_timeout_s=args.heartbeat_timeout,
            shards=args.shards,
            auth_token=args.auth_token,
        )
    else:
        runner = make_runner(
            jobs=args.jobs, store=store, retry=retry, shards=args.shards
        )
    progress = None
    if args.progress:
        from repro.core.campaign import CampaignProgress

        total = None if args.adaptive else len(rates) * len(depths)
        progress = CampaignProgress(total=total, label="sweep")
    if args.adaptive:
        from repro.core.campaign import adaptive_token_rate_sweep

        sweep = adaptive_token_rate_sweep(
            base,
            rates,
            depths,
            runner=runner,
            cliff_quality_jump=args.cliff_threshold,
            progress=progress,
        )
    else:
        sweep = token_rate_sweep(
            base,
            rates,
            depths,
            runner=runner,
            journal_path=args.journal,
            resume=args.resume,
            progress=progress,
            journal_compact_every=args.journal_compact,
        )
    print(render_sweep(sweep, title=f"sweep: {args.clip} ({args.codec})"))
    if args.workers:
        stats = runner.stats
        print(
            f"\nworkers [{args.workers}]: "
            f"{stats.reassignments} reassignments, "
            f"{stats.worker_losses} lost, "
            f"{stats.degraded_units} degraded to local"
        )
        speeds = {
            addr: rate
            for addr, rate in sorted(stats.worker_speeds.items())
            if ":" in addr  # per-address EWMA, not per-slot
        }
        if speeds:
            print(
                "worker speeds (points/s): "
                + ", ".join(f"{addr} {rate:.2f}" for addr, rate in speeds.items())
            )
    if sweep.sampling is not None:
        sampling = sweep.sampling
        print(
            f"\nadaptive: evaluated {sampling['evaluated']} of "
            f"{sampling['grid_points']} grid points "
            f"({100 * sampling['ratio']:.0f}%) in {sampling['rounds']} rounds"
        )
    if store is not None:
        print(f"\ncache [{store.cache_dir}]: {runner.stats.describe()}")
    if args.journal:
        total = len(sweep.points) + len(sweep.failures)
        resumed = total - runner.stats.submitted
        print(f"\njournal [{args.journal}]: {resumed} of {total} specs resumed")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(sweep))
        print(f"\nwrote {args.csv}")
    if sweep.failures:
        detail = "; ".join(
            f"r={to_mbps(f.token_rate_bps):.3f}Mbps "
            f"b={f.bucket_depth_bytes:.0f}B {f.record.describe()}"
            for f in sweep.failures
        )
        print(
            f"quarantined {len(sweep.failures)} of "
            f"{len(sweep.points) + len(sweep.failures)} specs: {detail}",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_detect(args) -> int:
    import dataclasses
    import json

    from repro.detect import detect_policing

    spec = dataclasses.replace(
        _spec_from_args(args, args.rate, args.depth),
        policer_action=args.policer_action,
        capture_trace=True,
    )
    result = run_experiment(spec)
    payload = result.extras.get("flow_trace")
    if payload is None:
        raise ValueError(
            f"testbed {spec.testbed!r} produced no flow trace to analyze"
        )
    verdict = detect_policing(payload, min_events=args.min_events)
    truth = {
        "token_rate_bps": spec.token_rate_bps,
        "bucket_depth_bytes": spec.bucket_depth_bytes,
        "policer_action": spec.policer_action,
        "packet_drop_fraction": result.packet_drop_fraction,
    }
    errors = None
    if verdict.estimate is not None:
        estimate = verdict.estimate
        errors = {
            "rate_relative_error": (
                abs(estimate.rate_bps - spec.token_rate_bps)
                / spec.token_rate_bps
            ),
            "depth_error_bytes": abs(
                estimate.depth_bytes - spec.bucket_depth_bytes
            ),
        }
    if args.json:
        print(
            json.dumps(
                {
                    "verdict": verdict.to_dict(),
                    "ground_truth": truth,
                    "errors": errors,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"clip={spec.clip} truth: r={to_mbps(spec.token_rate_bps):.3f} Mbps "
        f"b={spec.bucket_depth_bytes:.0f} B action={spec.policer_action}"
    )
    print(
        f"verdict: {verdict.code} (policed={verdict.policed}"
        + (f", action={verdict.action}" if verdict.action else "")
        + f"); {verdict.n_lost} lost, {verdict.n_remarked} remarked "
        f"of {verdict.n_packets} packets"
    )
    if verdict.estimate is not None:
        estimate = verdict.estimate
        ci_lo, ci_hi = estimate.rate_ci_bps
        print(
            f"estimate: r̂={to_mbps(estimate.rate_bps):.4f} Mbps "
            f"[{to_mbps(ci_lo):.4f}, {to_mbps(ci_hi):.4f}] "
            f"({100 * errors['rate_relative_error']:.3f}% off), "
            f"b̂={estimate.depth_bytes:.0f} B "
            f"[{estimate.depth_ci_bytes[0]:.0f}, {estimate.depth_ci_bytes[1]:.0f}] "
            f"({errors['depth_error_bytes']:.0f} B off)"
        )
    return 0


def _cmd_recommend(args) -> int:
    import json

    from repro.detect import recommend_provisioning

    if args.jobs < 1:
        raise ValueError(f"--jobs must be at least 1 (got {args.jobs})")
    depths = [float(d) for d in args.depths.split(",")]
    base = _spec_from_args(args, args.rate_max, depths[0])
    use_cache = args.warm or (
        args.cache if args.cache is not None else args.cache_dir is not None
    )
    store = None
    if use_cache:
        store = ResultStore(args.cache_dir or default_cache_dir())
    if args.warm:
        # Service-style path: the search is bound to the warm store and
        # only cache misses are scheduled (repro serve shares this).
        from repro.core.campaign import CampaignService

        runner = CampaignService(store, jobs=args.jobs).runner
    else:
        runner = make_runner(jobs=args.jobs, store=store)
    table = recommend_provisioning(
        base,
        depths=depths,
        runner=runner,
        target_quality_score=args.target_score,
        target_lost_frames=args.target_loss,
        rate_min_bps=mbps(args.rate_min),
        rate_max_bps=mbps(args.rate_max),
        precision_bps=args.precision * 1e3,
    )
    if args.json:
        print(json.dumps(table.to_dict(), indent=2))
        return 0
    target = table.target
    print(
        f"clip={table.clip} target: {target['metric']} <= {target['bound']} "
        f"(encoding avg {to_mbps(table.avg_rate_bps):.3f} / "
        f"max {to_mbps(table.max_rate_bps):.3f} Mbps)"
    )
    rows = [
        (
            f"{row.bucket_depth_bytes:.0f}",
            (
                f"{to_mbps(row.min_token_rate_bps):.3f}"
                if row.min_token_rate_bps is not None
                else "> rate-max"
            ),
            row.classification,
            f"{row.probes}",
        )
        for row in table.rows
    ]
    print(
        render_table(
            ["depth (B)", "min rate (Mbps)", "classification", "probes"], rows
        )
    )
    findings = table.findings()
    if "paper_finding_reproduced" in findings:
        print(
            "paper finding (4500 B ~ average rate, 3000 B ~ maximum rate): "
            + (
                "reproduced"
                if findings["paper_finding_reproduced"]
                else "NOT reproduced"
            )
        )
    if store is not None:
        print(f"cache [{store.cache_dir}]: {runner.stats.describe()}")
    return 0


def _cmd_admit(args) -> int:
    import dataclasses
    import json

    from repro.flows.admission import admission_frontier

    if args.jobs < 1:
        raise ValueError(f"--jobs must be at least 1 (got {args.jobs})")
    if args.max_flows < 1:
        raise ValueError(
            f"--max-flows must be at least 1 (got {args.max_flows})"
        )
    if args.shaper:
        raise ValueError("admit does not support --shaper")
    base = dataclasses.replace(
        _spec_from_args(args, args.rate, args.depth), cross_traffic_bps=0.0
    )
    use_cache = (
        args.cache if args.cache is not None else args.cache_dir is not None
    )
    store = None
    if use_cache:
        store = ResultStore(args.cache_dir or default_cache_dir())
    runner = make_runner(jobs=args.jobs, store=store)
    frontier = admission_frontier(
        base,
        args.max_flows,
        token_rate_bps=mbps(args.rate),
        bucket_depth_bytes=args.depth,
        floor_score=args.floor_score,
        floor_loss=args.floor_loss,
        budget_bps=mbps(args.budget) if args.budget is not None else None,
        runner=runner,
        spacing_s=args.flow_spacing,
        policing=args.flow_policing,
        policer_action=args.policer_action,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(frontier.to_dict(), indent=2))
        return 0
    print(
        f"admission frontier: {args.clip} ({args.codec}) "
        f"r={args.rate} Mbps b={args.depth:.0f} B "
        f"(nominal {to_mbps(frontier.nominal_rate_bps):.3f} Mbps/flow, "
        f"budget {to_mbps(frontier.budget_bps):.3f} Mbps)"
    )
    rows = [
        (
            f"{p.n_flows}",
            f"{p.worst_quality_score:.3f}",
            f"{100 * p.worst_lost_frame_fraction:.1f}%",
            f"{100 * p.packet_drop_fraction:.1f}%",
            f"{to_mbps(p.measured_peak_rate_bps):.2f}",
            "yes" if p.qoe_admissible else "no",
            "yes" if p.bandwidth_admissible else "no",
        )
        for p in frontier.points
    ]
    print(
        render_table(
            [
                "flows",
                "worst VQM",
                "worst loss",
                "drops",
                "peak (Mbps)",
                "QoE ok",
                "budget ok",
            ],
            rows,
        )
    )
    verdict = "disagree" if frontier.policies_disagree else "agree"
    print(
        f"qoe-floor admits {frontier.qoe_admitted} flow(s) "
        f"(score <= {frontier.floor_score}, loss <= {frontier.floor_loss}); "
        f"bandwidth budget admits {frontier.bandwidth_admitted} — "
        f"policies {verdict}"
    )
    if store is not None:
        print(f"cache [{store.cache_dir}]: {runner.stats.describe()}")
    return 0


def _cmd_serve(args) -> int:
    from repro.core.campaign import CampaignService

    if args.jobs < 1:
        raise ValueError(f"--jobs must be at least 1 (got {args.jobs})")
    retry = None
    if args.max_retries is not None or args.spec_timeout is not None:
        retry = RetryPolicy(
            max_retries=args.max_retries if args.max_retries is not None else 2,
            spec_timeout_s=args.spec_timeout,
        )
    store = ResultStore(args.cache_dir or default_cache_dir())
    service = CampaignService(store, jobs=args.jobs, retry=retry)
    print(
        f"serving provisioning queries from {store.cache_dir} "
        f"({len(store)} warm entries); one JSON request per line",
        file=sys.stderr,
    )
    handled = service.serve_forever()
    print(f"served {handled} requests", file=sys.stderr)
    return 0


def _cmd_worker(args) -> int:
    from repro.core.campaign.worker import run_worker

    if args.slots < 1:
        raise ValueError(f"--slots must be at least 1 (got {args.slots})")
    return run_worker(
        host=args.host,
        port=args.port,
        slots=args.slots,
        announce_host=args.announce_host,
        auth_token=args.auth_token,
    )


def _cmd_fleet(args) -> int:
    from repro.core.campaign.fleet import run_fleet

    return run_fleet(
        args.manifest,
        auth_token=args.auth_token,
        poll_s=args.poll,
        duration_s=args.duration,
    )


def _cmd_clips(_args) -> int:
    rows = []
    for name, clip in CLIPS.items():
        stats = encode_clip(name, "mpeg1", mbps(1.7)).rate_stats()
        rows.append(
            (
                name,
                f"{clip.n_frames}",
                f"{clip.duration_s:.2f}",
                f"{clip.fps:.2f}",
                f"{to_mbps(stats['rate_max_bps']):.2f}",
                clip.description,
            )
        )
    print(
        render_table(
            ["clip", "frames", "duration (s)", "fps", "max rate @1.7M", "description"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the SIGCOMM 2001 DiffServ/video-quality study",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one experiment")
    _add_spec_arguments(run_parser)
    run_parser.add_argument("--rate", type=float, required=True, help="token rate (Mbps)")
    run_parser.add_argument("--depth", type=float, default=3000.0, help="bucket depth (bytes)")
    run_parser.add_argument("--json", action="store_true", help="emit JSON")
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile; top-20 cumulative functions to stderr",
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = commands.add_parser("sweep", help="token-rate sweep (one figure)")
    _add_spec_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--rates", required=True, help="comma-separated token rates (Mbps)"
    )
    sweep_parser.add_argument(
        "--depths", default="3000,4500", help="comma-separated bucket depths (bytes)"
    )
    sweep_parser.add_argument("--csv", help="also write raw CSV here")
    sweep_parser.add_argument(
        "--flows", type=int, default=0, metavar="N",
        help="sweep N-flow aggregates sharing each grid point's "
        "profile instead of a single flow (see repro.flows)",
    )
    sweep_parser.add_argument(
        "--flow-spacing", type=float, default=0.0, metavar="S",
        help="stagger aggregate flow starts by S seconds (with --flows)",
    )
    sweep_parser.add_argument(
        "--flow-policing", default="aggregate",
        choices=["aggregate", "per-flow"],
        help="one shared bucket vs one identical bucket per flow "
        "(with --flows)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep batch (1 = in-process)",
    )
    sweep_parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse/store per-point results in the on-disk cache",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help=f"cache location (default {default_cache_dir()}; implies --cache)",
    )
    sweep_parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retries per failing spec before quarantine (enables fault tolerance)",
    )
    sweep_parser.add_argument(
        "--spec-timeout", type=float, default=None,
        help="per-attempt wall-clock budget in seconds (enables fault tolerance)",
    )
    sweep_parser.add_argument(
        "--journal", default=None,
        help="checkpoint every outcome to this append-only journal file",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="reload the journal and skip already-completed specs",
    )
    sweep_parser.add_argument(
        "--journal-compact", type=int, default=None, metavar="N",
        help="compact the journal into a checkpoint every N outcomes",
    )
    sweep_parser.add_argument(
        "--adaptive", action="store_true",
        help="cliff-seeking sampler: coarse grid + refinement around "
        "quality jumps instead of the full grid",
    )
    sweep_parser.add_argument(
        "--cliff-threshold", type=float, default=0.2,
        help="quality_score jump across a bracket that triggers "
        "adaptive refinement (only with --adaptive)",
    )
    sweep_parser.add_argument(
        "--progress", action="store_true",
        help="stream a one-line progress/ETA report to stderr",
    )
    sweep_parser.add_argument(
        "--shards", type=int, default=None,
        help="work-stealing shard count (default: one per worker)",
    )
    sweep_parser.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="dispatch the sweep to remote `repro worker` processes "
        "instead of local jobs (fault-tolerant: dead workers are "
        "reassigned, a lost fleet degrades to local execution)",
    )
    sweep_parser.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="S",
        help="remote worker heartbeat interval in seconds (with --workers)",
    )
    sweep_parser.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="S",
        help="declare a remote worker dead after this long without a "
        "heartbeat (default: 4x the heartbeat interval)",
    )
    sweep_parser.add_argument(
        "--auth-token", default=None,
        help="shared fleet secret for mutual wire authentication "
        "(default: the REPRO_AUTH_TOKEN environment variable)",
    )
    sweep_parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile; top-20 cumulative functions to stderr",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    clips_parser = commands.add_parser("clips", help="list registered clips")
    clips_parser.set_defaults(func=_cmd_clips)

    detect_parser = commands.add_parser(
        "detect", help="infer the policing token bucket from a flow trace"
    )
    _add_spec_arguments(detect_parser)
    detect_parser.add_argument(
        "--rate", type=float, required=True, help="true token rate (Mbps)"
    )
    detect_parser.add_argument(
        "--depth", type=float, default=3000.0, help="true bucket depth (bytes)"
    )
    detect_parser.add_argument(
        "--policer-action", dest="policer_action", default="drop",
        choices=["drop", "remark"],
        help="treatment of excess traffic in the simulated run",
    )
    detect_parser.add_argument(
        "--min-events", type=int, default=5,
        help="non-conformant events required before inferring",
    )
    detect_parser.add_argument("--json", action="store_true", help="emit JSON")
    detect_parser.set_defaults(func=_cmd_detect)

    recommend_parser = commands.add_parser(
        "recommend",
        help="minimal token rate per bucket depth for a quality target",
    )
    _add_spec_arguments(recommend_parser)
    recommend_parser.add_argument(
        "--depths", default="3000,4500",
        help="comma-separated bucket depths to provision (bytes)",
    )
    recommend_parser.add_argument(
        "--target-score", type=float, default=0.05,
        help="quality-score bound (0 best, 1 worst)",
    )
    recommend_parser.add_argument(
        "--target-loss", type=float, default=None,
        help="lost-frame-fraction bound (overrides --target-score)",
    )
    recommend_parser.add_argument(
        "--rate-min", type=float, default=1.0,
        help="search floor for the token rate (Mbps)",
    )
    recommend_parser.add_argument(
        "--rate-max", type=float, default=2.4,
        help="search ceiling for the token rate (Mbps)",
    )
    recommend_parser.add_argument(
        "--precision", type=float, default=20.0,
        help="bisection precision (kbps)",
    )
    recommend_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for each probe round (1 = in-process)",
    )
    recommend_parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse/store probe results in the on-disk cache",
    )
    recommend_parser.add_argument(
        "--cache-dir", default=None,
        help=f"cache location (default {default_cache_dir()}; implies --cache)",
    )
    recommend_parser.add_argument(
        "--warm", action="store_true",
        help="answer from the warm result store through the campaign "
        "service; only cache misses are simulated",
    )
    recommend_parser.add_argument("--json", action="store_true", help="emit JSON")
    recommend_parser.set_defaults(func=_cmd_recommend)

    admit_parser = commands.add_parser(
        "admit",
        help="admitted-flows-vs-QoE frontier: QoE-floor vs bandwidth budget",
    )
    _add_spec_arguments(admit_parser)
    admit_parser.add_argument(
        "--rate", type=float, required=True,
        help="aggregate token rate (Mbps)",
    )
    admit_parser.add_argument(
        "--depth", type=float, default=3000.0,
        help="aggregate bucket depth (bytes)",
    )
    admit_parser.add_argument(
        "--max-flows", type=int, default=4, metavar="N",
        help="probe aggregates of 1..N flows",
    )
    admit_parser.add_argument(
        "--floor-score", type=float, default=0.25,
        help="per-flow VQM score each admitted flow must stay within",
    )
    admit_parser.add_argument(
        "--floor-loss", type=float, default=0.05,
        help="per-flow lost-frame fraction each admitted flow must stay within",
    )
    admit_parser.add_argument(
        "--budget", type=float, default=None,
        help="naive bandwidth budget (Mbps; default: the token rate)",
    )
    admit_parser.add_argument(
        "--policer-action", dest="policer_action", default="drop",
        choices=["drop", "remark"],
        help="treatment of excess aggregate traffic",
    )
    admit_parser.add_argument(
        "--flow-spacing", type=float, default=0.0, metavar="S",
        help="stagger probe flow starts by S seconds",
    )
    admit_parser.add_argument(
        "--flow-policing", default="aggregate",
        choices=["aggregate", "per-flow"],
        help="one shared bucket vs one identical bucket per flow",
    )
    admit_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the probe batch (1 = in-process)",
    )
    admit_parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse/store probe results in the on-disk cache",
    )
    admit_parser.add_argument(
        "--cache-dir", default=None,
        help=f"cache location (default {default_cache_dir()}; implies --cache)",
    )
    admit_parser.add_argument("--json", action="store_true", help="emit JSON")
    admit_parser.set_defaults(func=_cmd_admit)

    serve_parser = commands.add_parser(
        "serve",
        help="long-running provisioning query service (JSON lines on stdin)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help=f"warm store location (default {default_cache_dir()})",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for scheduled cache misses",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retries per failing spec before quarantine",
    )
    serve_parser.add_argument(
        "--spec-timeout", type=float, default=None,
        help="per-attempt wall-clock budget in seconds",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    worker_parser = commands.add_parser(
        "worker",
        help="host one remote campaign worker (the `sweep --workers` fleet)",
    )
    worker_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to listen on (default 127.0.0.1)",
    )
    worker_parser.add_argument(
        "--port", type=int, default=0,
        help="port to listen on (0 = ephemeral; the bound address is "
        "announced as a JSON line on stdout)",
    )
    worker_parser.add_argument(
        "--slots", type=int, default=1,
        help="concurrent units this worker accepts (default 1)",
    )
    worker_parser.add_argument(
        "--announce-host", default=None,
        help="hostname to announce instead of the bind address (for "
        "wildcard binds like --host 0.0.0.0, which default to the "
        "resolved hostname)",
    )
    worker_parser.add_argument(
        "--auth-token", default=None,
        help="shared fleet secret for mutual wire authentication "
        "(default: the REPRO_AUTH_TOKEN environment variable)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    fleet_parser = commands.add_parser(
        "fleet",
        help="supervise a worker fleet from a TOML/JSON manifest",
    )
    fleet_parser.add_argument(
        "manifest",
        help="fleet manifest: a [[workers]] array of host/port/slots "
        "tables, plus an optional [defaults] table",
    )
    fleet_parser.add_argument(
        "--auth-token", default=None,
        help="shared fleet secret handed to every worker via its "
        "environment (default: the REPRO_AUTH_TOKEN environment variable)",
    )
    fleet_parser.add_argument(
        "--poll", type=float, default=0.1, metavar="S",
        help="supervision poll interval in seconds (default 0.1)",
    )
    fleet_parser.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop the fleet after this many seconds (default: run "
        "until interrupted)",
    )
    fleet_parser.set_defaults(func=_cmd_fleet)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain errors (unknown clip, invalid configuration) print a
    one-line message and exit 2 instead of dumping a traceback.
    """
    args = build_parser().parse_args(argv)
    profile = (
        bool(getattr(args, "profile", False))
        or os.environ.get("REPRO_PROFILE", "") == "1"
    )
    try:
        if profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            try:
                return profiler.runcall(args.func, args)
            finally:
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(20)
        return args.func(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
